package sim

// golden is the SplitMix64 increment (the 64-bit golden ratio). Stream
// counters advance the underlying state by this constant per draw, exactly
// as a sequentially-stepped SplitMix64 generator would.
const golden = 0x9e3779b97f4a7c15

// splitMix64 is the SplitMix64 finalizer, a high-quality 64-bit mixing
// function. It is both the seed-derivation primitive (via Mix64) and the
// output function of Stream: draw i of a stream with key k is
// splitMix64(k + i·golden), a pure function of (key, counter).
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mix64 combines two 64-bit values into one with strong avalanche. It is the
// key-derivation primitive shared by the simulator and the random-function
// substrate.
func Mix64(a, b uint64) uint64 {
	return splitMix64(splitMix64(a) ^ (b + 0x632be59bd9b4e019))
}

// streamKey is the single copy of the processor-stream derivation recipe,
// shared by DeriveRand (fresh construction) and Context.Reseed (arena
// recycling) so the two can never drift apart. It is part of the sim-v2
// determinism contract: every value a processor ever draws is
// splitMix64(streamKey(seed, id) + ctr·golden) for some counter ctr ≥ 1.
func streamKey(seed int64, id ProcID) uint64 {
	return Mix64(uint64(seed), uint64(id))
}

// Stream is a counter-based splittable PRNG in the SplitMix64 family: draw
// number i is splitMix64(key + i·golden), so every value is a pure function
// of (key, counter) with no heap state and O(1) reseeding. Distinct keys
// (derived via Mix64) yield decorrelated streams; within a stream the
// generator is exactly sequential SplitMix64, which passes BigCrush.
//
// The counter wraps modulo 2⁶⁴: after 2⁶⁴ draws the stream repeats from its
// first value. No simulation here draws more than a few thousand values per
// stream, so the wrap is of documentation interest only (see
// TestStreamCounterWrap).
//
// The zero Stream is a valid generator for key 0; construct real streams
// with NewStream so keys go through the Mix64 derivation.
type Stream struct {
	key uint64
	ctr uint64
}

// NewStream returns the processor-randomness stream for the given trial seed
// and processor id. Equivalent streams compare equal: two Streams with the
// same (seed, id) at the same position are identical values.
func NewStream(seed int64, id ProcID) Stream {
	return Stream{key: streamKey(seed, id)}
}

// DeriveRand returns a deterministic PRNG for the given processor in the
// given trial. Distinct (seed, id) pairs yield decorrelated streams.
//
// It is the pointer-returning form of NewStream, kept for call sites that
// store the generator behind an interface.
func DeriveRand(seed int64, id ProcID) *Stream {
	s := NewStream(seed, id)
	return &s
}

// At returns draw number i (1-based, matching the i-th Uint64 call on a
// fresh stream) without consuming stream state. It is the pure random-access
// form of the generator, used by the golden-vector tests to pin the stream
// definition across platforms.
func (s *Stream) At(i uint64) uint64 {
	return splitMix64(s.key + (i-1)*golden)
}

// Uint64 returns the next 64-bit draw.
func (s *Stream) Uint64() uint64 {
	v := splitMix64(s.key + s.ctr*golden)
	s.ctr++
	return v
}

// Int63 returns a uniform value in [0, 2⁶³).
func (s *Stream) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Int63n returns a uniform value in [0, n). It panics if n ≤ 0. Rejection
// sampling keeps the distribution exactly uniform for every n.
func (s *Stream) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive bound")
	}
	if n&(n-1) == 0 { // power of two: mask is exact
		return s.Int63() & (n - 1)
	}
	max := int64(uint64(1)<<63 - 1 - (uint64(1)<<63)%uint64(n))
	v := s.Int63()
	for v > max {
		v = s.Int63()
	}
	return v % n
}

// Intn returns a uniform value in [0, n) as an int. It panics if n ≤ 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive bound")
	}
	return int(s.Int63n(int64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 random bits of mantissa.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}
