package sim

import "math/rand"

// splitMix64 is the SplitMix64 finalizer, a high-quality 64-bit mixing
// function. It is used to derive independent per-processor PRNG seeds from a
// single trial seed so that executions are reproducible and processor
// randomness is decorrelated.
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mix64 combines two 64-bit values into one with strong avalanche. It is the
// seed-derivation primitive shared by the simulator and the random-function
// substrate.
func Mix64(a, b uint64) uint64 {
	return splitMix64(splitMix64(a) ^ (b + 0x632be59bd9b4e019))
}

// deriveSeed is the single copy of the processor-stream derivation recipe,
// shared by DeriveRand (fresh construction) and Context.Reseed (arena
// recycling) so the two can never drift apart.
func deriveSeed(seed int64, id ProcID) int64 {
	return int64(Mix64(uint64(seed), uint64(id)))
}

// DeriveRand returns a deterministic PRNG for the given processor in the
// given trial. Distinct (seed, id) pairs yield decorrelated streams.
func DeriveRand(seed int64, id ProcID) *rand.Rand {
	return rand.New(rand.NewSource(deriveSeed(seed, id)))
}
