package sim

import (
	"reflect"
	"testing"
)

// drawer exercises the per-processor PRNG: it draws on wake-up and on every
// receive, so any divergence between a fresh and a reseeded RNG stream shows
// up in the outputs.
type drawer struct {
	n     int
	draws int64
}

func (d *drawer) Init(ctx *Context) {
	d.draws = ctx.Rand().Int63n(1 << 30)
	if ctx.Self() == 1 {
		ctx.Send(d.draws % 997)
	}
}

func (d *drawer) Receive(ctx *Context, _ ProcID, value int64) {
	d.draws += ctx.Rand().Int63n(1 << 30)
	if int(value)%d.n == int(ctx.Self())%d.n {
		ctx.Terminate(d.draws % 1009)
		return
	}
	ctx.Send(value + d.draws%31 + 1)
}

func newDrawerRing(n int) []Strategy {
	strategies := make([]Strategy, n)
	for i := 0; i < n; i++ {
		strategies[i] = &drawer{n: n}
	}
	return strategies
}

func drawerConfig(n int, seed int64) Config {
	return Config{Strategies: newDrawerRing(n), Edges: RingEdges(n), Seed: seed, StepLimit: 4096}
}

// TestResetMatchesFresh is the arena determinism contract: a reset-then-run
// network must reproduce a freshly constructed network bit for bit — same
// outputs, statuses, counters and failure classification — across seeds and
// across topology changes on the same recycled Network.
func TestResetMatchesFresh(t *testing.T) {
	net := &Network{}
	// Walk sizes up and down so the recycled network both grows and
	// shrinks, and interleave seeds so every run reseeds mid-stream.
	sizes := []int{4, 7, 4, 12, 3, 12, 8}
	for _, n := range sizes {
		for seed := int64(0); seed < 20; seed++ {
			cfg := drawerConfig(n, seed)
			fresh, err := New(drawerConfig(n, seed))
			if err != nil {
				t.Fatal(err)
			}
			want := fresh.Run().Clone()
			if err := net.Reset(cfg); err != nil {
				t.Fatalf("Reset(n=%d seed=%d): %v", n, seed, err)
			}
			got := net.Run().Clone()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d seed=%d: reset run %+v differs from fresh run %+v", n, seed, got, want)
			}
		}
	}
}

// TestResetWithSchedulers pins the reset equivalence under non-FIFO
// schedules, where the pending-deque recycling is actually stressed.
func TestResetWithSchedulers(t *testing.T) {
	const n = 9
	net := &Network{}
	for seed := int64(0); seed < 10; seed++ {
		for _, mk := range []func() Scheduler{
			func() Scheduler { return nil },
			func() Scheduler { return LIFOScheduler{} },
			func() Scheduler { return NewRandomScheduler(seed) },
		} {
			cfg := drawerConfig(n, seed)
			cfg.Scheduler = mk()
			fresh, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := fresh.Run().Clone()
			cfg2 := drawerConfig(n, seed)
			cfg2.Scheduler = mk()
			if err := net.Reset(cfg2); err != nil {
				t.Fatal(err)
			}
			if got := net.Run().Clone(); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed=%d sched=%T: reset run differs from fresh run", seed, cfg.Scheduler)
			}
		}
	}
}

func TestResetRejectsBadConfig(t *testing.T) {
	net, err := New(drawerConfig(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	net.Run()
	bad := drawerConfig(4, 1)
	bad.Edges = []Edge{{From: 1, To: 1}}
	if err := net.Reset(bad); err == nil {
		t.Fatal("self-loop accepted by Reset")
	}
	// A failed Reset installs nothing (validation precedes mutation); a
	// subsequent good Reset must behave exactly like a fresh construction.
	if err := net.Reset(drawerConfig(5, 2)); err != nil {
		t.Fatal(err)
	}
	fresh, err := New(drawerConfig(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := net.Run().Clone(), fresh.Run().Clone(); !reflect.DeepEqual(got, want) {
		t.Fatal("recovered network differs from fresh network")
	}
}

func TestContextReseedReproducesFreshStream(t *testing.T) {
	backend, err := New(drawerConfig(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{0, 1, -7, 1 << 40} {
		fresh := NewContext(backend, 2, seed)
		reused := NewContext(backend, 2, 999)
		reused.Rand().Int63() // advance, then rewind
		reused.Reseed(seed)
		for i := 0; i < 64; i++ {
			if f, r := fresh.Rand().Int63(), reused.Rand().Int63(); f != r {
				t.Fatalf("seed=%d draw %d: fresh %d != reseeded %d", seed, i, f, r)
			}
		}
	}
}

func TestRandomSchedulerReseed(t *testing.T) {
	s := NewRandomScheduler(11)
	for i := 0; i < 10; i++ {
		s.Pick(5) // advance
	}
	s.Reseed(42)
	fresh := NewRandomScheduler(42)
	for i := 0; i < 64; i++ {
		if f, r := fresh.Pick(7), s.Pick(7); f != r {
			t.Fatalf("pick %d: fresh %d != reseeded %d", i, f, r)
		}
	}
}

func TestArenaRunMatchesFresh(t *testing.T) {
	arena := NewArena()
	for _, n := range []int{4, 4, 9, 5} {
		for seed := int64(0); seed < 8; seed++ {
			fresh, err := New(drawerConfig(n, seed))
			if err != nil {
				t.Fatal(err)
			}
			want := fresh.Run().Clone()
			res, err := arena.Run(drawerConfig(n, seed))
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Clone(); !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d seed=%d: arena run differs from fresh run", n, seed)
			}
		}
	}
}

func TestNilArenaFallbacks(t *testing.T) {
	var a *Arena
	if _, err := a.Run(drawerConfig(4, 3)); err != nil {
		t.Fatal(err)
	}
	if got := a.RingEdges(5); len(got) != 5 {
		t.Fatalf("nil-arena RingEdges returned %d edges", len(got))
	}
	if s := a.RandomScheduler(1); s == nil {
		t.Fatal("nil-arena RandomScheduler returned nil")
	}
	if s := a.Strategies(6); len(s) != 6 {
		t.Fatalf("nil-arena Strategies returned len %d", len(s))
	}
}

func TestArenaStrategiesScratchIsZeroed(t *testing.T) {
	a := NewArena()
	s := a.Strategies(4)
	for i := range s {
		s[i] = &drawer{n: 4}
	}
	s = a.Strategies(3)
	for i, v := range s {
		if v != nil {
			t.Fatalf("slot %d not zeroed on reuse", i)
		}
	}
}

// BenchmarkArenaNetworkReuse is the sim-core half of the arena story: one
// Reset/Run cycle against the cost of building a fresh network per
// execution. Run with -benchmem; the reuse side should report near-zero
// allocations beyond the strategy vector.
func BenchmarkArenaNetworkReuse(b *testing.B) {
	const n = 64
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			net, err := New(drawerConfig(n, int64(i)))
			if err != nil {
				b.Fatal(err)
			}
			net.Run()
		}
	})
	b.Run("arena", func(b *testing.B) {
		b.ReportAllocs()
		arena := NewArena()
		for i := 0; i < b.N; i++ {
			cfg := Config{Strategies: newDrawerRing(n), Edges: arena.RingEdges(n), Seed: int64(i), StepLimit: 4096}
			if _, err := arena.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
