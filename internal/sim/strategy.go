package sim

// ProcID identifies a processor. Processors are numbered 1..n as in the
// paper's model, where the id set V = [n] is common knowledge.
type ProcID int

// Strategy is the deterministic behaviour of a single processor: a function
// from everything the processor knows (its id, its random string, and its
// receive history) to the messages it sends. Strategies are invoked once on
// wake-up and then once per received message. A strategy that deviates from
// a protocol in any way models an adversary (Definition 2.2).
type Strategy interface {
	// Init is the wake-up event. Most ring processors do nothing here
	// except draw their secrets; the origin additionally sends.
	Init(ctx *Context)

	// Receive handles one incoming message. from is the link's source
	// processor, value the payload. The strategy may send zero or more
	// messages and may terminate.
	Receive(ctx *Context, from ProcID, value int64)
}

// Backend is the runtime a Context delegates to. The event-driven Network
// is the default backend; the conc package provides a goroutine-per-
// processor backend running the same strategies on real channels.
type Backend interface {
	// Send enqueues value on the processor's default (first) outgoing
	// link; on a unidirectional ring that is the only link.
	Send(from ProcID, value int64)
	// SendTo enqueues value on the link towards the given neighbour, or
	// silently drops the message if no such link exists.
	SendTo(from, to ProcID, value int64)
	// Terminate ends the processor's participation; aborted selects ⊥.
	Terminate(from ProcID, output int64, aborted bool)
	// Sent returns how many messages the processor has sent so far.
	Sent(p ProcID) int
	// Received returns how many messages it has processed so far.
	Received(p ProcID) int
	// Size returns the number of processors.
	Size() int
}

// Context is a strategy's handle to its runtime during one invocation.
// It exposes exactly the capabilities the model grants a processor: sending
// on its outgoing links, terminating with an output (or aborting with ⊥),
// and local randomness.
type Context struct {
	backend Backend
	// net is the devirtualized backend: non-nil exactly when backend is the
	// event-driven *Network, letting the per-message primitives (Send,
	// Terminate, …) call concrete methods the compiler can inline instead
	// of paying an interface dispatch on the hottest path in the
	// repository. Foreign backends (the conc runtime, test doubles) leave
	// it nil and take the interface route.
	net  *Network
	self ProcID
	rng  Stream
}

// NewContext builds a context for the given backend; used by runtimes, not
// by strategies.
func NewContext(backend Backend, self ProcID, seed int64) Context {
	net, _ := backend.(*Network)
	return Context{backend: backend, net: net, self: self, rng: NewStream(seed, self)}
}

// Reseed rewinds the context's PRNG to the start of the stream a fresh
// NewContext with the same trial seed would draw. With the counter-based
// Stream this is a two-word store — the arena primitive that lets a recycled
// network reproduce a fresh network's randomness bit-for-bit at zero cost.
func (c *Context) Reseed(seed int64) {
	c.rng = NewStream(seed, c.self)
}

// Self returns the processor's own id.
func (c *Context) Self() ProcID { return c.self }

// N returns the number of processors in the network. The id set V = [n] is
// known to every processor in the model.
func (c *Context) N() int { return c.backend.Size() }

// Rand returns the processor's local source of randomness. It is derived
// deterministically from the trial seed and the processor id, so executions
// are reproducible. The pointer is into the Context itself; it is valid for
// the strategy invocation it was obtained in.
func (c *Context) Rand() *Stream { return &c.rng }

// Send enqueues value on the processor's unique outgoing link. It is the
// natural primitive on a unidirectional ring. If the processor has several
// outgoing links, the first configured link is used; use SendTo on general
// graphs. Sends after termination are ignored (a terminated processor is
// silent).
func (c *Context) Send(value int64) {
	if c.net != nil {
		c.net.Send(c.self, value)
		return
	}
	c.backend.Send(c.self, value)
}

// SendTo enqueues value on the link from this processor to the given
// neighbour. If no such link exists the message is silently dropped, which
// models an (impossible) send outside the communication graph.
func (c *Context) SendTo(to ProcID, value int64) {
	if c.net != nil {
		c.net.SendTo(c.self, to, value)
		return
	}
	c.backend.SendTo(c.self, to, value)
}

// Terminate ends the processor's participation with the given output.
// Subsequent deliveries to this processor are dropped and subsequent sends
// from it are ignored.
func (c *Context) Terminate(output int64) {
	if c.net != nil {
		c.net.Terminate(c.self, output, false)
		return
	}
	c.backend.Terminate(c.self, output, false)
}

// Abort terminates the processor with output ⊥, the model's "punishment"
// move: a single aborting processor forces outcome = FAIL.
func (c *Context) Abort() {
	if c.net != nil {
		c.net.Terminate(c.self, 0, true)
		return
	}
	c.backend.Terminate(c.self, 0, true)
}

// Sent returns how many messages this processor has sent so far, the
// Sent_i^t counter used throughout the synchronization analysis (Appendix D).
func (c *Context) Sent() int {
	if c.net != nil {
		return c.net.Sent(c.self)
	}
	return c.backend.Sent(c.self)
}

// Received returns how many messages this processor has processed so far.
func (c *Context) Received() int {
	if c.net != nil {
		return c.net.Received(c.self)
	}
	return c.backend.Received(c.self)
}
