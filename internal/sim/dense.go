package sim

import (
	"errors"
	"fmt"
)

// DenseRun executes cfg on the dense reference interpreter: the textbook
// event loop that sweeps every processor round-robin and delivers one
// message per live processor per sweep, paying O(n) per scheduling decision
// where the production Network's pending ring pays O(1) per active event.
//
// It exists as an independently written oracle for the sparse kernel, not as
// a runtime: the differential tests pin the Network's outcome distributions
// against it across every ring scenario. It shares none of the Network's
// delivery machinery — its own per-link FIFO queues, its own sweep order —
// but draws the identical per-processor PRNG streams (NewStream(seed, id)),
// applies the identical failure classification, and mirrors the Network's
// message accounting: sends to an already-terminated processor are dropped
// at send time without consuming a step, deliveries to a processor that
// terminated after the send drop at delivery time and do consume one.
//
// cfg.Scheduler is ignored — the round-robin sweep is the schedule — and so
// is cfg.Tracer. On the unidirectional ring (per-link FIFO pins every local
// computation, Section 2) this changes no outcome, which is exactly the
// claim the differential tests exercise. cfg.StepLimit defaults to the
// Network's 64·n² + 4096.
func DenseRun(cfg Config) (Result, error) {
	n := len(cfg.Strategies)
	if n == 0 {
		return Result{}, errors.New("sim: no strategies")
	}
	for i, s := range cfg.Strategies {
		if s == nil {
			return Result{}, fmt.Errorf("sim: nil strategy for processor %d", i+1)
		}
	}
	d := &denseNet{
		n:        n,
		links:    make([]denseLink, 0, len(cfg.Edges)),
		incoming: make([][]int, n+1),
		outgoing: make([]int, n+1),
		statuses: make([]Status, n+1),
		outputs:  make([]int64, n+1),
		sent:     make([]int, n+1),
		received: make([]int, n+1),
	}
	for i := range d.outgoing {
		d.outgoing[i] = -1
	}
	seen := make(map[Edge]bool, len(cfg.Edges))
	for _, e := range cfg.Edges {
		if e.From < 1 || int(e.From) > n || e.To < 1 || int(e.To) > n {
			return Result{}, fmt.Errorf("sim: edge %d→%d out of range [1,%d]", e.From, e.To, n)
		}
		if e.From == e.To {
			return Result{}, fmt.Errorf("sim: self-loop on processor %d", e.From)
		}
		if seen[e] {
			return Result{}, fmt.Errorf("sim: duplicate edge %d→%d", e.From, e.To)
		}
		seen[e] = true
		idx := len(d.links)
		d.links = append(d.links, denseLink{from: e.From, to: e.To})
		d.incoming[e.To] = append(d.incoming[e.To], idx)
		if d.outgoing[e.From] < 0 {
			d.outgoing[e.From] = idx
		}
	}
	d.stepLimit = cfg.StepLimit
	if d.stepLimit <= 0 {
		d.stepLimit = 64*n*n + 4096
	}
	d.ctxs = make([]Context, n+1)
	for i := 1; i <= n; i++ {
		d.statuses[i] = StatusRunning
		d.ctxs[i] = NewContext(d, ProcID(i), cfg.Seed)
	}
	for i := 1; i <= n; i++ {
		cfg.Strategies[i-1].Init(&d.ctxs[i])
	}
	d.sweep(cfg.Strategies)
	return d.result(), nil
}

// denseLink is one directed FIFO edge of the dense interpreter, with a plain
// head-indexed slice queue — clarity over the production ring buffers.
type denseLink struct {
	from  ProcID
	to    ProcID
	queue []int64
	head  int
}

func (l *denseLink) pending() int { return len(l.queue) - l.head }

func (l *denseLink) pop() int64 {
	v := l.queue[l.head]
	l.head++
	if l.head == len(l.queue) {
		l.queue, l.head = l.queue[:0], 0
	}
	return v
}

// denseNet is the dense interpreter's Backend: strategies run on the
// interface route of Context (no devirtualization), exercising the same
// strategy code the Network runs.
type denseNet struct {
	n        int
	links    []denseLink
	incoming [][]int // link indices by destination, in edge order
	outgoing []int   // first outgoing link by source, -1 = none
	ctxs     []Context
	statuses []Status
	outputs  []int64
	sent     []int
	received []int

	pending    int
	terminated int
	delivered  int
	dropped    int
	steps      int
	stepLimit  int
}

var _ Backend = (*denseNet)(nil)

// Size implements Backend.
func (d *denseNet) Size() int { return d.n }

// Sent implements Backend.
func (d *denseNet) Sent(p ProcID) int { return d.sent[p] }

// Received implements Backend.
func (d *denseNet) Received(p ProcID) int { return d.received[p] }

// Send implements Backend: enqueue on the first outgoing link, mirroring the
// Network's send-time accounting (silent after termination, dead-link sends
// dropped without a step).
func (d *denseNet) Send(from ProcID, value int64) {
	idx := d.outgoing[from]
	if idx < 0 {
		return
	}
	d.enqueue(from, idx, value)
}

// SendTo implements Backend: enqueue towards a specific neighbour, silently
// dropping sends outside the communication graph.
func (d *denseNet) SendTo(from, to ProcID, value int64) {
	for _, idx := range d.incoming[to] {
		if d.links[idx].from == from {
			d.enqueue(from, idx, value)
			return
		}
	}
}

func (d *denseNet) enqueue(from ProcID, linkIdx int, value int64) {
	if d.statuses[from] != StatusRunning {
		return
	}
	d.sent[from]++
	l := &d.links[linkIdx]
	if d.statuses[l.to] != StatusRunning {
		d.dropped++
		return
	}
	l.queue = append(l.queue, value)
	d.pending++
}

// Terminate implements Backend.
func (d *denseNet) Terminate(id ProcID, output int64, aborted bool) {
	if d.statuses[id] != StatusRunning {
		return
	}
	if aborted {
		d.statuses[id] = StatusAborted
	} else {
		d.statuses[id] = StatusTerminated
		d.outputs[id] = output
	}
	d.terminated++
}

// sweep is the dense delivery loop: repeatedly scan all processors in id
// order and deliver at most one message to each — from its first incoming
// link with queued traffic — until the network quiesces, every processor has
// terminated, or the step budget runs out. Queued messages whose target
// terminated mid-flight are drained as delivery-time drops, each consuming a
// step like the Network's dropDeliver path.
func (d *denseNet) sweep(strategies []Strategy) {
	for d.pending > 0 && d.terminated < d.n && d.steps < d.stepLimit {
		for i := 1; i <= d.n && d.steps < d.stepLimit; i++ {
			if d.statuses[i] != StatusRunning {
				for _, idx := range d.incoming[i] {
					l := &d.links[idx]
					for l.pending() > 0 && d.steps < d.stepLimit {
						l.pop()
						d.pending--
						d.dropped++
						d.steps++
					}
				}
				continue
			}
			for _, idx := range d.incoming[i] {
				l := &d.links[idx]
				if l.pending() == 0 {
					continue
				}
				value := l.pop()
				d.pending--
				d.steps++
				d.delivered++
				d.received[i]++
				strategies[i-1].Receive(&d.ctxs[i], l.from, value)
				break
			}
		}
	}
}

// result classifies the final state exactly as Network.result does.
func (d *denseNet) result() Result {
	res := Result{
		Outputs:   d.outputs,
		Statuses:  d.statuses,
		Delivered: d.delivered,
		Dropped:   d.dropped,
		Steps:     d.steps,
	}
	if d.steps >= d.stepLimit && d.pending > 0 && d.terminated < d.n {
		res.Failed = true
		res.Reason = FailStepLimit
		return res
	}
	first := true
	var common int64
	agree := true
	anyAbort, anyRunning := false, false
	for i := 1; i <= d.n; i++ {
		switch d.statuses[i] {
		case StatusAborted:
			anyAbort = true
		case StatusRunning:
			anyRunning = true
		case StatusTerminated:
			if first {
				common, first = d.outputs[i], false
			} else if d.outputs[i] != common {
				agree = false
			}
		}
	}
	switch {
	case anyAbort:
		res.Failed, res.Reason = true, FailAbort
	case anyRunning:
		res.Failed, res.Reason = true, FailStall
	case !agree:
		res.Failed, res.Reason = true, FailMismatch
	default:
		res.Output = common
	}
	return res
}
