package sim

// Tracer observes an execution. All callbacks run synchronously inside the
// simulation loop, in execution order, so a Tracer sees a linearization of
// the run: every delivery callback is followed by the sends it triggered.
type Tracer interface {
	// OnSend fires when a processor enqueues its idx-th outgoing message
	// (1-based), before delivery.
	OnSend(from ProcID, idx int, to ProcID, value int64)
	// OnDeliver fires when a processor is about to process its idx-th
	// incoming message (1-based).
	OnDeliver(to ProcID, idx int, from ProcID, value int64)
	// OnTerminate fires when a processor terminates; aborted reports ⊥.
	OnTerminate(p ProcID, output int64, aborted bool)
}

// MultiTracer fans events out to several tracers in order.
type MultiTracer []Tracer

var _ Tracer = MultiTracer(nil)

// OnSend implements Tracer.
func (m MultiTracer) OnSend(from ProcID, idx int, to ProcID, value int64) {
	for _, t := range m {
		t.OnSend(from, idx, to, value)
	}
}

// OnDeliver implements Tracer.
func (m MultiTracer) OnDeliver(to ProcID, idx int, from ProcID, value int64) {
	for _, t := range m {
		t.OnDeliver(to, idx, from, value)
	}
}

// OnTerminate implements Tracer.
func (m MultiTracer) OnTerminate(p ProcID, output int64, aborted bool) {
	for _, t := range m {
		t.OnTerminate(p, output, aborted)
	}
}
