package sim

import "testing"

// star broadcasts from a hub and collects acknowledgements, exercising
// SendTo on a multi-link topology.
type hub struct {
	leaves int
	acks   int
}

func (h *hub) Init(ctx *Context) {
	for leaf := 2; leaf <= h.leaves+1; leaf++ {
		ctx.SendTo(ProcID(leaf), int64(leaf))
	}
	// A send to a non-neighbour (or self route) must vanish silently.
	ctx.SendTo(ProcID(h.leaves+99), 1)
}

func (h *hub) Receive(ctx *Context, from ProcID, v int64) {
	h.acks++
	if h.acks == h.leaves {
		ctx.Terminate(1)
	}
}

type leaf struct{}

func (leaf) Init(*Context) {}
func (leaf) Receive(ctx *Context, _ ProcID, v int64) {
	ctx.SendTo(1, v) // ack back to the hub
	ctx.Terminate(1)
}

func TestStarTopologySendTo(t *testing.T) {
	const leaves = 5
	strategies := make([]Strategy, leaves+1)
	strategies[0] = &hub{leaves: leaves}
	for i := 1; i <= leaves; i++ {
		strategies[i] = leaf{}
	}
	var edges []Edge
	for i := 2; i <= leaves+1; i++ {
		edges = append(edges, Edge{From: 1, To: ProcID(i)}, Edge{From: ProcID(i), To: 1})
	}
	net, err := New(Config{Strategies: strategies, Edges: edges})
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run()
	if res.Failed {
		t.Fatalf("star broadcast failed: %v", res.Reason)
	}
	if res.Output != 1 {
		t.Fatalf("output = %d", res.Output)
	}
}

// sentProbe checks the Sent/Received counters mid-run via the Context.
type sentProbe struct {
	t       *testing.T
	hops    int
	starter bool
}

func (p *sentProbe) Init(ctx *Context) {
	if ctx.N() != 2 {
		p.t.Errorf("N() = %d, want 2", ctx.N())
	}
	if p.starter {
		ctx.Send(0)
		if ctx.Sent() != 1 {
			p.t.Errorf("Sent() = %d after one send", ctx.Sent())
		}
	}
}

func (p *sentProbe) Receive(ctx *Context, _ ProcID, v int64) {
	if ctx.Received() < 1 {
		p.t.Error("Received() = 0 inside Receive")
	}
	p.hops--
	ctx.Send(v) // keep the token alive for the peer
	if p.hops <= 0 {
		ctx.Terminate(7)
		// Post-termination sends must be ignored silently.
		ctx.Send(99)
	}
}

func TestContextCountersAndPostTerminationSend(t *testing.T) {
	strategies := []Strategy{
		&sentProbe{t: t, hops: 1, starter: true},
		&sentProbe{t: t, hops: 1},
	}
	net, err := New(Config{Strategies: strategies, Edges: RingEdges(2)})
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run()
	if res.Failed {
		t.Fatalf("failed: %v", res.Reason)
	}
	if net.Sent(1) == 0 || net.Received(1) == 0 {
		t.Error("network-level counters empty")
	}
}

func TestStatusAndReasonStrings(t *testing.T) {
	for _, s := range []Status{StatusRunning, StatusTerminated, StatusAborted, Status(99)} {
		if s.String() == "" {
			t.Errorf("empty string for status %d", int(s))
		}
	}
	for _, r := range []FailReason{FailNone, FailAbort, FailMismatch, FailStall, FailStepLimit, FailReason(99)} {
		if r.String() == "" {
			t.Errorf("empty string for reason %d", int(r))
		}
	}
}

func TestLongRunCompactsQueues(t *testing.T) {
	// Push enough messages through a tiny ring to trigger the link and
	// pending-queue compaction paths.
	strategies := newEchoRing(2, 6000, 3)
	net, err := New(Config{Strategies: strategies, Edges: RingEdges(2), StepLimit: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run()
	if res.Failed {
		t.Fatalf("long echo failed: %v", res.Reason)
	}
}

func TestRunTwiceReturnsSameResult(t *testing.T) {
	net, err := New(Config{Strategies: newEchoRing(3, 2, 5), Edges: RingEdges(3)})
	if err != nil {
		t.Fatal(err)
	}
	first := net.Run()
	second := net.Run()
	if first.Output != second.Output || first.Failed != second.Failed {
		t.Error("second Run() differed from the first")
	}
}
