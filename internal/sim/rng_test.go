package sim

import (
	"math"
	"testing"
)

// TestStreamGoldenVectors pins the exact draw sequences of the splittable
// stream generator across platforms and refactors: every value below is a
// pure function of (seed, id, counter), so any change to the key
// derivation, the golden-ratio increment, or the SplitMix64 mixer breaks
// this test — and with it the sim-v2 determinism contract that every
// committed golden (EXPERIMENTS.md, CERTIFICATES.md, the cmd goldens)
// depends on. Regenerating these constants means re-recording all of them.
func TestStreamGoldenVectors(t *testing.T) {
	cases := []struct {
		seed int64
		id   ProcID
		want [4]uint64
	}{
		{seed: 20180516, id: 1, want: [4]uint64{0xcfb4bfd8e1eb7e0, 0xbb0822331d10afe6, 0x4652f4c2d08a4231, 0x3493a828979f76b9}},
		{seed: 20180516, id: 2, want: [4]uint64{0xcd6d17b1ffe9cf78, 0x83a2ffc40b534fc0, 0x75cc2c57776e5fe3, 0x176acb9850a6a76f}},
		{seed: -1, id: 7, want: [4]uint64{0xa0f8e06bfa3418b0, 0xe18e5cc342e728e1, 0x80855178799fa623, 0x378b60335f5fc5d6}},
		{seed: 0, id: 0, want: [4]uint64{0x1fe790c5909b35d4, 0x7f864ac873fb2707, 0xa172800554e3d2f1, 0xffe7b9cbeb192d9c}},
	}
	for _, c := range cases {
		s := NewStream(c.seed, c.id)
		for i, want := range c.want {
			if got := s.Uint64(); got != want {
				t.Errorf("Stream(seed=%d, id=%d) draw %d = %#x, want %#x", c.seed, c.id, i, got, want)
			}
		}
		// At is the pure positional accessor: At(i) must equal the i-th
		// sequential draw without disturbing the stream's own counter.
		s = NewStream(c.seed, c.id)
		for i, want := range c.want {
			if got := s.At(uint64(i + 1)); got != want {
				t.Errorf("Stream(seed=%d, id=%d).At(%d) = %#x, want %#x", c.seed, c.id, i+1, got, want)
			}
		}
	}
	// Derived draws pin the bit-to-value lowerings too.
	r := NewStream(42, 3)
	if got, want := r.Float64(), 0.8214414365264449; got != want {
		t.Errorf("Float64 first draw = %v, want %v", got, want)
	}
	wantSeq := []int64{0, 8, 8, 6, 7, 3}
	for i, want := range wantSeq {
		if got := r.Int63n(10); got != want {
			t.Errorf("Int63n(10) draw %d = %d, want %d", i, got, want)
		}
	}
}

// TestStreamCounterWrap pins the wrap-around behaviour: the counter
// advances mod 2⁶⁴, so a stream at counter 2⁶⁴−1 draws that position and
// then continues from position 0 — the sequence is periodic, never
// panicking or sticking. (No simulation gets within 2⁴⁰ of the wrap; the
// test exists so the behaviour is contractual, not accidental.)
func TestStreamCounterWrap(t *testing.T) {
	fresh := NewStream(99, 5)
	first := fresh.Uint64() // position 0

	s := NewStream(99, 5)
	s.ctr = ^uint64(0) // position 2⁶⁴−1
	last := s.Uint64()
	if got := s.Uint64(); got != first {
		t.Errorf("draw after wrap = %#x, want position-0 value %#x", got, first)
	}
	probe := NewStream(99, 5)
	if want := probe.At(0); last != want {
		// At is 1-based: At(0) wraps to position 2⁶⁴−1 by the same
		// arithmetic, so the two wrap behaviours must agree.
		t.Errorf("draw at position 2⁶⁴−1 = %#x, At(0) = %#x", last, want)
	}
}

// TestStreamDecorrelation is the chi-squared smoke test: draws within one
// stream, across sibling streams (same seed, adjacent processor ids), and
// across adjacent trial seeds must all look uniform. The thresholds are
// generous (p ≈ 0.001 tails) — this is a tripwire against a broken key
// derivation (e.g. adjacent ids landing in overlapping counter ranges),
// not a statistical certification; the equilibrium fairness suite is the
// real net.
func TestStreamDecorrelation(t *testing.T) {
	const bins = 64
	// 99.9th percentile of χ² with 63 degrees of freedom.
	const chiMax = 103.4

	chi2 := func(counts [bins]int, total int) float64 {
		expected := float64(total) / bins
		var x float64
		for _, c := range counts {
			d := float64(c) - expected
			x += d * d / expected
		}
		return x
	}

	t.Run("within-stream", func(t *testing.T) {
		s := NewStream(20180516, 1)
		var counts [bins]int
		const total = 64 * 1024
		for i := 0; i < total; i++ {
			counts[s.Intn(bins)]++
		}
		if x := chi2(counts, total); x > chiMax {
			t.Errorf("χ² = %.1f > %.1f: sequential draws not uniform", x, chiMax)
		}
	})
	t.Run("across-processors", func(t *testing.T) {
		// One draw from each of 64k sibling streams: uniformity here means
		// the per-processor key derivation decorrelates adjacent ids.
		var counts [bins]int
		const total = 64 * 1024
		for id := 0; id < total; id++ {
			s := NewStream(20180516, ProcID(id))
			counts[s.Intn(bins)]++
		}
		if x := chi2(counts, total); x > chiMax {
			t.Errorf("χ² = %.1f > %.1f: adjacent processor streams correlated", x, chiMax)
		}
	})
	t.Run("across-seeds", func(t *testing.T) {
		var counts [bins]int
		const total = 64 * 1024
		for seed := 0; seed < total; seed++ {
			s := NewStream(int64(seed), 1)
			counts[s.Intn(bins)]++
		}
		if x := chi2(counts, total); x > chiMax {
			t.Errorf("χ² = %.1f > %.1f: adjacent seeds correlated", x, chiMax)
		}
	})
	t.Run("float64-range", func(t *testing.T) {
		s := NewStream(7, 7)
		var sum float64
		const total = 4096
		for i := 0; i < total; i++ {
			f := s.Float64()
			if f < 0 || f >= 1 {
				t.Fatalf("Float64() = %v out of [0,1)", f)
			}
			sum += f
		}
		if mean := sum / total; math.Abs(mean-0.5) > 0.02 {
			t.Errorf("Float64 mean = %.4f, want ≈ 0.5", mean)
		}
	})
}

// TestStreamInt63nRejection exercises the modulo-bias rejection path: for a
// non-power-of-two bound every value must stay in range, the power-of-two
// path must agree with masking, and n ≤ 0 must panic like math/rand.
func TestStreamInt63nRejection(t *testing.T) {
	s := NewStream(123, 4)
	for i := 0; i < 4096; i++ {
		if v := s.Int63n(10); v < 0 || v >= 10 {
			t.Fatalf("Int63n(10) = %d out of range", v)
		}
		if v := s.Int63n(1); v != 0 {
			t.Fatalf("Int63n(1) = %d, want 0", v)
		}
	}
	mask := NewStream(5, 5)
	seq := NewStream(5, 5)
	for i := 0; i < 1024; i++ {
		if got, want := mask.Int63n(64), seq.Int63()&63; got != want {
			t.Fatalf("power-of-two path: Int63n(64) = %d, want masked draw %d", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Int63n(0) did not panic")
		}
	}()
	s.Int63n(0)
}

// TestStreamReseedIsTotal pins the O(1) reseed contract: reseeding a
// stream in place is indistinguishable from constructing a fresh one — the
// property the arena's recycled contexts rely on.
func TestStreamReseedIsTotal(t *testing.T) {
	s := NewStream(1, 1)
	for i := 0; i < 17; i++ {
		s.Uint64() // advance to an arbitrary interior position
	}
	s = NewStream(20180516, 9) // the two-word-store reseed
	fresh := NewStream(20180516, 9)
	for i := 0; i < 8; i++ {
		if got, want := s.Uint64(), fresh.Uint64(); got != want {
			t.Fatalf("draw %d after value reseed = %#x, want %#x", i, got, want)
		}
	}
}
