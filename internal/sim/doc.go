// Package sim implements the asynchronous message-passing model of
// Yifrach & Mansour, "Fair Leader Election for Rational Agents in
// Asynchronous Rings and Networks" (PODC 2018), Section 2.
//
// Processors are nodes of a directed communication graph. They exchange
// messages of unlimited size along FIFO links. A processor may perform
// computation and send messages only upon wake-up (Init) or upon receiving a
// message (Receive). Each processor has access to local randomness (an
// infinite random string, modelled by a per-processor deterministic PRNG
// derived from the trial seed). Messages are delivered uncorrupted, in FIFO
// order per link, according to an oblivious schedule: the scheduler chooses
// which pending message is delivered next without inspecting payloads.
//
// An execution ends when the network quiesces (no message in flight), when
// every processor has terminated, or when a configurable step limit is
// exceeded (modelling executions that run forever). The outcome of an
// execution follows Definition 2 of the paper: it is the common output o of
// all processors if every processor terminated with the same valid output,
// and FAIL otherwise (some processor aborted with ⊥, two outputs disagree, or
// some processor never terminates).
//
// The simulator is deterministic: the same configuration, seed and scheduler
// always produce the same execution, which makes attacks and resilience
// experiments exactly reproducible.
//
// # Arenas
//
// Monte-Carlo workloads run thousands of executions of near-identical
// configurations. To keep that hot path allocation-free, a Network supports
// Reset — reinstating a configuration's initial state on the existing
// backing memory (processor slots, link queues, PRNG state, result buffers)
// — and Arena bundles a recycled Network with the per-trial scratch
// structures (edge sets, schedulers, strategy slices) a trial batch needs.
// Each trial-engine worker owns one arena; determinism is preserved because
// Reset plus reseeding reproduces a fresh construction bit for bit, a
// property pinned by the arena test suites here and in internal/scenario.
// See Arena for the ownership and aliasing rules.
package sim
