package sim

import (
	"testing"
)

// echo terminates after bouncing a token a fixed number of times.
type echo struct {
	n       int
	hops    int
	starter bool
	output  int64
}

func (e *echo) Init(ctx *Context) {
	if e.starter {
		ctx.Send(1)
	}
}

func (e *echo) Receive(ctx *Context, _ ProcID, value int64) {
	e.hops--
	ctx.Send(value + 1)
	if e.hops <= 0 {
		ctx.Terminate(e.output)
	}
}

func newEchoRing(n, hops int, output int64) []Strategy {
	strategies := make([]Strategy, n)
	for i := 0; i < n; i++ {
		strategies[i] = &echo{n: n, hops: hops, starter: i == 0, output: output}
	}
	return strategies
}

func TestRingEdges(t *testing.T) {
	edges := RingEdges(3)
	want := []Edge{{1, 2}, {2, 3}, {3, 1}}
	if len(edges) != len(want) {
		t.Fatalf("got %d edges, want %d", len(edges), len(want))
	}
	for i, e := range edges {
		if e != want[i] {
			t.Errorf("edge %d: got %v, want %v", i, e, want[i])
		}
	}
}

func TestCommonOutput(t *testing.T) {
	net, err := New(Config{Strategies: newEchoRing(4, 3, 7), Edges: RingEdges(4)})
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run()
	if res.Failed {
		t.Fatalf("unexpected failure: %v", res.Reason)
	}
	if res.Output != 7 {
		t.Fatalf("output = %d, want 7", res.Output)
	}
}

func TestMismatchOutcome(t *testing.T) {
	strategies := newEchoRing(4, 3, 7)
	strategies[2] = &echo{n: 4, hops: 3, output: 9}
	net, err := New(Config{Strategies: strategies, Edges: RingEdges(4)})
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run()
	if !res.Failed || res.Reason != FailMismatch {
		t.Fatalf("got (%v,%v), want mismatch failure", res.Failed, res.Reason)
	}
}

// aborter aborts on first contact.
type aborter struct{}

func (aborter) Init(*Context)                           {}
func (aborter) Receive(ctx *Context, _ ProcID, _ int64) { ctx.Abort() }

func TestAbortOutcome(t *testing.T) {
	strategies := newEchoRing(4, 3, 7)
	strategies[1] = aborter{}
	net, err := New(Config{Strategies: strategies, Edges: RingEdges(4)})
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run()
	if !res.Failed || res.Reason != FailAbort {
		t.Fatalf("got (%v,%v), want abort failure", res.Failed, res.Reason)
	}
	if res.Statuses[2] != StatusAborted {
		t.Fatalf("processor 2 status = %v, want aborted", res.Statuses[2])
	}
}

// silent never sends nor terminates: downstream processors stall.
type silent struct{}

func (silent) Init(*Context)                   {}
func (silent) Receive(*Context, ProcID, int64) {}

func TestStallOutcome(t *testing.T) {
	strategies := newEchoRing(4, 3, 7)
	strategies[1] = silent{}
	net, err := New(Config{Strategies: strategies, Edges: RingEdges(4)})
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run()
	if !res.Failed || res.Reason != FailStall {
		t.Fatalf("got (%v,%v), want stall failure", res.Failed, res.Reason)
	}
}

// chatterbox floods the ring forever.
type chatterbox struct{}

func (chatterbox) Init(ctx *Context) { ctx.Send(0) }
func (chatterbox) Receive(ctx *Context, _ ProcID, v int64) {
	ctx.Send(v)
	ctx.Send(v)
}

func TestStepLimitOutcome(t *testing.T) {
	strategies := []Strategy{chatterbox{}, chatterbox{}}
	net, err := New(Config{Strategies: strategies, Edges: RingEdges(2), StepLimit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run()
	if !res.Failed || res.Reason != FailStepLimit {
		t.Fatalf("got (%v,%v), want step-limit failure", res.Failed, res.Reason)
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"no strategies", Config{}},
		{"nil strategy", Config{Strategies: []Strategy{nil}}},
		{"edge out of range", Config{Strategies: newEchoRing(2, 1, 0), Edges: []Edge{{1, 5}}}},
		{"self loop", Config{Strategies: newEchoRing(2, 1, 0), Edges: []Edge{{1, 1}}}},
		{"duplicate edge", Config{Strategies: newEchoRing(2, 1, 0), Edges: []Edge{{1, 2}, {1, 2}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg); err == nil {
				t.Fatal("want error, got nil")
			}
		})
	}
}

func TestDeriveRandDeterminism(t *testing.T) {
	a := DeriveRand(42, 3)
	b := DeriveRand(42, 3)
	c := DeriveRand(42, 4)
	same, diff := true, false
	for i := 0; i < 16; i++ {
		x, y, z := a.Int63(), b.Int63(), c.Int63()
		if x != y {
			same = false
		}
		if x != z {
			diff = true
		}
	}
	if !same {
		t.Error("same (seed,id) produced different streams")
	}
	if !diff {
		t.Error("different ids produced identical streams")
	}
}

// recorder observes trace callbacks.
type recorder struct {
	sends      int
	deliveries int
	terms      int
}

func (r *recorder) OnSend(ProcID, int, ProcID, int64)    { r.sends++ }
func (r *recorder) OnDeliver(ProcID, int, ProcID, int64) { r.deliveries++ }
func (r *recorder) OnTerminate(ProcID, int64, bool)      { r.terms++ }

func TestTracerSeesAllEvents(t *testing.T) {
	rec := &recorder{}
	net, err := New(Config{
		Strategies: newEchoRing(4, 3, 7),
		Edges:      RingEdges(4),
		Tracer:     MultiTracer{rec},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run()
	if rec.terms != 4 {
		t.Errorf("terminations traced = %d, want 4", rec.terms)
	}
	if rec.deliveries != res.Delivered {
		t.Errorf("deliveries traced = %d, result says %d", rec.deliveries, res.Delivered)
	}
	if rec.sends < rec.deliveries {
		t.Errorf("sends traced = %d < deliveries %d", rec.sends, rec.deliveries)
	}
}

func TestSchedulerPickRange(t *testing.T) {
	scheds := []Scheduler{FIFOScheduler{}, LIFOScheduler{}, NewRandomScheduler(1)}
	for _, s := range scheds {
		for k := 1; k <= 8; k++ {
			got := s.Pick(k)
			if got < 0 || got >= k {
				t.Fatalf("%T.Pick(%d) = %d out of range", s, k, got)
			}
		}
	}
}
