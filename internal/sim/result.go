package sim

import "fmt"

// FailReason classifies why an execution's outcome is FAIL.
type FailReason int

// Failure classifications, per the outcome definition in Section 2.
const (
	// FailNone means the execution did not fail.
	FailNone FailReason = iota
	// FailAbort means some processor terminated with output ⊥.
	FailAbort
	// FailMismatch means two processors terminated with different outputs.
	FailMismatch
	// FailStall means some processor never terminates: the network
	// quiesced while a processor was still waiting for a message.
	FailStall
	// FailStepLimit means the execution exceeded the delivery budget,
	// which models an execution that runs forever.
	FailStepLimit
)

// String implements fmt.Stringer.
func (r FailReason) String() string {
	switch r {
	case FailNone:
		return "none"
	case FailAbort:
		return "abort"
	case FailMismatch:
		return "mismatch"
	case FailStall:
		return "stall"
	case FailStepLimit:
		return "step-limit"
	default:
		return fmt.Sprintf("FailReason(%d)", int(r))
	}
}

// Result is the outcome of one execution.
type Result struct {
	// Failed reports outcome == FAIL.
	Failed bool
	// Reason classifies the failure; FailNone when Failed is false.
	Reason FailReason
	// Output is the common output of all processors when Failed is false.
	Output int64
	// Outputs[i] is processor i's output (meaningful where Statuses[i] is
	// StatusTerminated). Index 0 is unused.
	Outputs []int64
	// Statuses[i] is processor i's final lifecycle state. Index 0 unused.
	Statuses []Status
	// Delivered counts messages processed by running processors.
	Delivered int
	// Dropped counts messages that arrived at already-terminated
	// processors.
	Dropped int
	// Steps counts scheduler steps (delivered + dropped).
	Steps int
}

func (net *Network) result() Result {
	res := Result{
		Outputs:   make([]int64, net.n+1),
		Statuses:  make([]Status, net.n+1),
		Delivered: net.delivered,
		Dropped:   net.dropped,
		Steps:     net.steps,
	}
	if net.steps >= net.stepLimit && net.pendingCount() > 0 && net.terminated < net.n {
		res.Failed = true
		res.Reason = FailStepLimit
	}
	first := true
	var common int64
	agree := true
	anyAbort, anyRunning := false, false
	for i := 1; i <= net.n; i++ {
		p := &net.procs[i]
		res.Statuses[i] = p.status
		res.Outputs[i] = p.output
		switch p.status {
		case StatusAborted:
			anyAbort = true
		case StatusRunning:
			anyRunning = true
		case StatusTerminated:
			if first {
				common, first = p.output, false
			} else if p.output != common {
				agree = false
			}
		}
	}
	if res.Failed {
		return res
	}
	switch {
	case anyAbort:
		res.Failed, res.Reason = true, FailAbort
	case anyRunning:
		res.Failed, res.Reason = true, FailStall
	case !agree:
		res.Failed, res.Reason = true, FailMismatch
	default:
		res.Output = common
	}
	return res
}
