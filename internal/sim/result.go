package sim

import "fmt"

// FailReason classifies why an execution's outcome is FAIL.
type FailReason int

// Failure classifications, per the outcome definition in Section 2.
const (
	// FailNone means the execution did not fail.
	FailNone FailReason = iota
	// FailAbort means some processor terminated with output ⊥.
	FailAbort
	// FailMismatch means two processors terminated with different outputs.
	FailMismatch
	// FailStall means some processor never terminates: the network
	// quiesced while a processor was still waiting for a message.
	FailStall
	// FailStepLimit means the execution exceeded the delivery budget,
	// which models an execution that runs forever.
	FailStepLimit
)

// String implements fmt.Stringer.
func (r FailReason) String() string {
	switch r {
	case FailNone:
		return "none"
	case FailAbort:
		return "abort"
	case FailMismatch:
		return "mismatch"
	case FailStall:
		return "stall"
	case FailStepLimit:
		return "step-limit"
	default:
		return fmt.Sprintf("FailReason(%d)", int(r))
	}
}

// Result is the outcome of one execution.
type Result struct {
	// Failed reports outcome == FAIL.
	Failed bool
	// Reason classifies the failure; FailNone when Failed is false.
	Reason FailReason
	// Output is the common output of all processors when Failed is false.
	Output int64
	// Outputs[i] is processor i's output (meaningful where Statuses[i] is
	// StatusTerminated). Index 0 is unused. On a Network reused via Reset,
	// Outputs aliases the network's recycled result buffer and is
	// invalidated by the next Reset; Clone the result to keep it.
	Outputs []int64
	// Statuses[i] is processor i's final lifecycle state. Index 0 unused.
	// The aliasing caveat of Outputs applies.
	Statuses []Status
	// Delivered counts messages processed by running processors.
	Delivered int
	// Dropped counts messages that arrived at already-terminated
	// processors.
	Dropped int
	// Steps counts scheduler steps (delivered + dropped).
	Steps int
}

// Clone returns a deep copy of the result whose slices do not alias any
// network-owned buffer, safe to retain across a Network Reset.
func (r Result) Clone() Result {
	c := r
	c.Outputs = append([]int64(nil), r.Outputs...)
	c.Statuses = append([]Status(nil), r.Statuses...)
	return c
}

func (net *Network) result() Result {
	// The per-processor slices live on the network so that a Reset/Run
	// cycle recycles them; they are fully overwritten below. Both caps are
	// checked so the buffers cannot drift apart if one is ever resized
	// elsewhere.
	if cap(net.outBuf) < net.n+1 || cap(net.statBuf) < net.n+1 {
		net.outBuf = make([]int64, net.n+1)
		net.statBuf = make([]Status, net.n+1)
	}
	net.outBuf = net.outBuf[:net.n+1]
	net.statBuf = net.statBuf[:net.n+1]
	net.outBuf[0], net.statBuf[0] = 0, 0
	res := Result{
		Outputs:   net.outBuf,
		Statuses:  net.statBuf,
		Delivered: net.delivered,
		Dropped:   net.dropped,
		Steps:     net.steps,
	}
	if net.steps >= net.stepLimit && net.pendingCount() > 0 && net.terminated < net.n {
		res.Failed = true
		res.Reason = FailStepLimit
	}
	first := true
	var common int64
	agree := true
	anyAbort, anyRunning := false, false
	for i := 1; i <= net.n; i++ {
		out := net.procs[i].output
		st := Status(net.hot[i].status)
		res.Statuses[i] = st
		res.Outputs[i] = out
		switch st {
		case StatusAborted:
			anyAbort = true
		case StatusRunning:
			anyRunning = true
		case StatusTerminated:
			if first {
				common, first = out, false
			} else if out != common {
				agree = false
			}
		}
	}
	if res.Failed {
		return res
	}
	switch {
	case anyAbort:
		res.Failed, res.Reason = true, FailAbort
	case anyRunning:
		res.Failed, res.Reason = true, FailStall
	case !agree:
		res.Failed, res.Reason = true, FailMismatch
	default:
		res.Output = common
	}
	return res
}
