package sim

// Arena is a reusable per-worker simulation workspace. It owns one Network
// plus the scratch structures every trial needs (an edge set, a scheduler, a
// strategy slice) and recycles them across executions, so a worker that runs
// thousands of Monte-Carlo trials performs a near-constant number of
// allocations instead of rebuilding the simulation state per trial.
//
// Ownership rules:
//
//   - An Arena belongs to exactly one goroutine at a time; none of its
//     methods are safe for concurrent use. The trial engine gives each
//     worker its own arena.
//   - Everything returned by an arena method (the Network's Result, the
//     RingEdges slice, the Strategies scratch, the RandomScheduler) aliases
//     arena-owned memory and is invalidated by the arena's next Run /
//     RingEdges / Strategies / RandomScheduler call. Copy what must outlive
//     the trial (see Result.Clone).
//   - A nil *Arena is valid everywhere and means "do not recycle": every
//     method falls back to fresh allocations with identical results, so
//     code paths that run a single execution need no special casing.
//
// Determinism: an arena-run execution is bit-for-bit identical to a fresh
// one — Network.Reset reinstates initial state exactly, Context.Reseed and
// RandomScheduler.Reseed rewind the PRNGs to the streams fresh constructors
// would draw. The sim and scenario test suites enforce this equivalence
// property across every ring scenario.
type Arena struct {
	net       *Network
	ringEdges []Edge
	randSched *RandomScheduler
	strategy  []Strategy
}

// NewArena returns an empty arena. The zero value is also ready to use.
func NewArena() *Arena { return &Arena{} }

// Run executes cfg on the arena's recycled network, constructing it on the
// first call. On a nil arena it is equivalent to New followed by Run.
func (a *Arena) Run(cfg Config) (Result, error) {
	if a == nil || a.net == nil {
		net, err := New(cfg)
		if err != nil {
			return Result{}, err
		}
		if a != nil {
			a.net = net
		}
		return net.Run(), nil
	}
	if err := a.net.Reset(cfg); err != nil {
		// Reset validates before mutating, so the network still holds its
		// previous good configuration and stays reusable for the next Run.
		return Result{}, err
	}
	return a.net.Run(), nil
}

// RingEdges is RingEdges memoized on the arena: successive calls with the
// same n return the same slice without allocating. The slice is read-only
// for the caller and owned by the arena.
func (a *Arena) RingEdges(n int) []Edge {
	if a == nil {
		return RingEdges(n)
	}
	if len(a.ringEdges) != n {
		a.ringEdges = RingEdges(n)
	}
	return a.ringEdges
}

// RandomScheduler returns the arena's reseedable random scheduler, rewound
// to the given seed's choice sequence. One scheduler object serves a whole
// trial batch.
func (a *Arena) RandomScheduler(seed int64) *RandomScheduler {
	if a == nil {
		return NewRandomScheduler(seed)
	}
	if a.randSched == nil {
		a.randSched = NewRandomScheduler(seed)
	} else {
		a.randSched.Reseed(seed)
	}
	return a.randSched
}

// Strategies returns a nil-filled scratch slice of length n for assembling a
// strategy vector, recycled across trials. Callers must overwrite every slot
// before handing the slice to Run.
func (a *Arena) Strategies(n int) []Strategy {
	if a == nil {
		return make([]Strategy, n)
	}
	if cap(a.strategy) < n {
		a.strategy = make([]Strategy, n)
	}
	s := a.strategy[:n]
	for i := range s {
		s[i] = nil
	}
	return s
}
