package sim_test

import (
	"testing"

	"repro/internal/protocols/alead"
	"repro/internal/protocols/basiclead"
	"repro/internal/ring"
	"repro/internal/sim"
)

// TestDenseMatchesNetworkOnRing pins the dense reference interpreter against
// the production sparse kernel execution by execution: on the unidirectional
// ring, per-link FIFO pins every local computation, so outcome AND message
// accounting must agree exactly — not just in distribution.
func TestDenseMatchesNetworkOnRing(t *testing.T) {
	protos := []ring.Protocol{basiclead.New(), alead.New()}
	for _, proto := range protos {
		for _, n := range []int{2, 5, 8, 16} {
			for seed := int64(0); seed < 20; seed++ {
				want, err := ring.Run(ring.Spec{N: n, Protocol: proto, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				strategies, err := proto.Strategies(n)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sim.DenseRun(sim.Config{
					Strategies: strategies,
					Edges:      sim.RingEdges(n),
					Seed:       seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				if got.Failed != want.Failed || got.Reason != want.Reason ||
					got.Output != want.Output || got.Delivered != want.Delivered ||
					got.Dropped != want.Dropped {
					t.Fatalf("%s n=%d seed=%d: dense %+v vs network %+v",
						proto.Name(), n, seed, got, want)
				}
			}
		}
	}
}

func TestDenseValidation(t *testing.T) {
	ok := func(n int) []sim.Strategy {
		s, err := basiclead.New().Strategies(n)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []sim.Config{
		{},
		{Strategies: []sim.Strategy{nil, nil}, Edges: sim.RingEdges(2)},
		{Strategies: ok(2), Edges: []sim.Edge{{From: 1, To: 3}}},
		{Strategies: ok(2), Edges: []sim.Edge{{From: 1, To: 1}}},
		{Strategies: ok(2), Edges: []sim.Edge{{From: 1, To: 2}, {From: 1, To: 2}}},
	}
	for i, cfg := range cases {
		if _, err := sim.DenseRun(cfg); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

// pingPong forwards forever: the execution that models running out of the
// delivery budget.
type pingPong struct{}

func (pingPong) Init(ctx *sim.Context)                           { ctx.Send(1) }
func (pingPong) Receive(ctx *sim.Context, _ sim.ProcID, v int64) { ctx.Send(v) }

// silent never sends and never terminates: instant quiescence, a stall.
type silent struct{}

func (silent) Init(*sim.Context)                       {}
func (silent) Receive(*sim.Context, sim.ProcID, int64) {}

func TestDenseFailureClassification(t *testing.T) {
	res, err := sim.DenseRun(sim.Config{
		Strategies: []sim.Strategy{pingPong{}, pingPong{}},
		Edges:      sim.RingEdges(2),
		StepLimit:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || res.Reason != sim.FailStepLimit {
		t.Fatalf("ping-pong: %+v, want step-limit", res)
	}
	res, err = sim.DenseRun(sim.Config{
		Strategies: []sim.Strategy{silent{}, silent{}},
		Edges:      sim.RingEdges(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || res.Reason != sim.FailStall {
		t.Fatalf("silent: %+v, want stall", res)
	}
}
