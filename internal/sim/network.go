package sim

import (
	"errors"
	"fmt"
)

// Status is the lifecycle state of a processor.
type Status int

// Processor lifecycle states.
const (
	// StatusRunning means the processor has not yet produced an output.
	StatusRunning Status = iota + 1
	// StatusTerminated means the processor terminated with a valid output.
	StatusTerminated
	// StatusAborted means the processor terminated with output ⊥.
	StatusAborted
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusTerminated:
		return "terminated"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Edge is a directed FIFO link of the communication graph.
type Edge struct {
	From ProcID
	To   ProcID
}

// Config describes one execution of a protocol (or adversarial deviation).
type Config struct {
	// Strategies[i] drives processor i+1. Its length determines n.
	// Strategy objects carry per-execution state, so build a fresh vector
	// for every configuration (as every Protocol.Strategies call does);
	// passing objects that already ran an execution — including to a
	// Network Reset — yields undefined behaviour unless their Init fully
	// re-establishes initial state.
	Strategies []Strategy

	// Edges are the directed FIFO links. Use RingEdges for the
	// unidirectional ring topology.
	Edges []Edge

	// Seed determines all processor-local randomness for the execution.
	Seed int64

	// Scheduler picks the delivery order among pending messages. It must
	// be oblivious (payload-independent). Defaults to FIFO order, which on
	// a unidirectional ring is equivalent to every other schedule.
	Scheduler Scheduler

	// Tracer, if non-nil, observes every send, delivery and termination.
	Tracer Tracer

	// StepLimit bounds the number of deliveries; executions exceeding it
	// are classified as running forever (outcome FAIL). Defaults to
	// 64·n² + 4096, far above any protocol in this repository.
	StepLimit int
}

// schedKind tags the concrete scheduler type so the delivery loop can
// dispatch without an interface call per message. Unknown implementations
// fall back to the interface (schedGeneric).
type schedKind uint8

const (
	schedFIFO schedKind = iota
	schedLIFO
	schedRandom
	schedGeneric
)

// link is one directed FIFO edge. In non-FIFO scheduling modes each link
// carries its own power-of-two ring buffer of undelivered payloads (head and
// tail are absolute counters; index = ctr & (len−1)); in FIFO mode payloads
// ride inline in the network's pending ring and the per-link queue stays
// empty.
type link struct {
	from  ProcID
	to    ProcID
	queue []int64
	head  int
	tail  int
}

func (l *link) push(v int64) {
	if l.tail-l.head == len(l.queue) {
		l.grow()
	}
	l.queue[l.tail&(len(l.queue)-1)] = v
	l.tail++
}

func (l *link) pop() int64 {
	v := l.queue[l.head&(len(l.queue)-1)]
	l.head++
	return v
}

func (l *link) grow() {
	newCap := len(l.queue) * 2
	if newCap == 0 {
		newCap = 16
	}
	grown := make([]int64, newCap)
	count := l.tail - l.head
	for i := 0; i < count; i++ {
		grown[i] = l.queue[(l.head+i)&(len(l.queue)-1)]
	}
	l.queue = grown
	l.head, l.tail = 0, count
}

// procState holds the cold per-processor state: the strategy, its context
// and its final output. The fields touched on every message — status, send
// and receive counters, default-route cache — live in the Network's parallel
// structure-of-arrays slices instead, so the per-message loop walks a few
// kilobytes of hot arrays rather than striding through ~100-byte structs
// that fall out of L1 on large rings.
type procState struct {
	strategy Strategy
	ctx      Context
	output   int64
}

// pendSlot is one undelivered message in the pending ring: routing metadata
// and payload interleaved so a push or pop touches a single cache line.
type pendSlot struct {
	meta int64
	val  int64
}

// hotProc packs the per-processor fields every message touches into one
// 16-byte record, so a send reads exactly two cache lines of processor state
// (the sender's record and the target's) and a delivery reads one: status and
// the receive counter share a line, and the route cache and send counter
// share the sender's.
type hotProc struct {
	// outTo is the destination of the processor's default route, −1 when the
	// processor cannot send — either it has no outgoing link or it has
	// already terminated (Terminate clears the route, folding the
	// sender-alive check into the route load; configure re-establishes it).
	outTo int32
	// status mirrors the processor's Status as an int32.
	status   int32
	sent     int32
	received int32
}

// Network is an executor for one configuration. Build with New, run with
// Run. A Network is single-use per configuration: Run executes at most once
// until Reset reinstates a (possibly different) configuration on the same
// backing memory, which is how trial arenas run thousands of executions
// without rebuilding the network each time.
type Network struct {
	n        int
	procs    []procState // index by ProcID; slot 0 unused
	links    []link
	outLinks [][]int // per ProcID, indices into links

	// Hot per-processor state, indexed by ProcID with slot 0 unused. Every
	// send and delivery works entirely on these dense 16-byte records (a few
	// KB even at n=1024) instead of striding through procState, keeping the
	// per-message working set L1-resident.
	hot []hotProc
	// outLink caches each processor's first outgoing link (index into
	// links), −1 for a processor with no outgoing links; only the non-FIFO
	// send path consults it. Refreshed by configure on every Reset.
	outLink []int32

	// The pending set is a power-of-two ring buffer of interleaved
	// meta/payload slots in global send order (payloads are consulted only
	// in FIFO mode, where global order implies per-link order and the
	// per-link queues are bypassed entirely). The metadata word is
	// schedule-dependent: in FIFO mode it packs from<<32|to so delivery
	// never dereferences the link table; in every other mode it is the
	// link index the scheduler's pick resolves through. pendHead and
	// pendTail are absolute counters; index = ctr & (len−1).
	pend     []pendSlot
	pendHead int
	pendTail int

	sched     Scheduler
	schedKind schedKind
	randSched *RandomScheduler
	tracer    Tracer
	stepLimit int
	// steps and delivered are materialized from pendHead and dropDeliver
	// when a run loop exits; the loops themselves maintain only pendHead
	// (the absolute pop counter doubles as the step count) and the
	// cold-branch dropDeliver.
	steps       int
	delivered   int
	dropped     int
	dropDeliver int
	terminated  int
	ran         bool

	// outBuf and statBuf back the Result of a reused network, so repeated
	// Reset/Run cycles do not allocate fresh result slices. See result().
	outBuf  []int64
	statBuf []Status
}

// RingEdges returns the edge set of the unidirectional ring 1→2→…→n→1.
func RingEdges(n int) []Edge {
	edges := make([]Edge, n)
	for i := 1; i <= n; i++ {
		to := ProcID(i%n + 1)
		edges[i-1] = Edge{From: ProcID(i), To: to}
	}
	return edges
}

// New validates the configuration and builds an executable network.
func New(cfg Config) (*Network, error) {
	net := &Network{}
	if err := net.configure(cfg); err != nil {
		return nil, err
	}
	return net, nil
}

// Reset reinstates the initial state of cfg on the network's existing
// backing memory: processor slots, link queues, the pending ring, the
// per-processor PRNG streams and the result buffers are all recycled instead
// of reallocated, and only a topology change (different size or edge set)
// rebuilds the link structures. A Reset network runs cfg exactly as a
// freshly constructed one would — bit-for-bit, including every PRNG stream —
// which is what lets trial arenas recycle one Network across thousands of
// trials (enforced by TestResetMatchesFresh and the scenario-wide property
// test).
//
// Two caveats, both consequences of the recycling:
//
//   - The Result of a previous Run on this network aliases the recycled
//     buffers; it is invalidated by Reset. Copy it first (Result.Clone) if
//     it must outlive the next trial.
//   - Reset validates the whole configuration before mutating anything, so
//     on error the network keeps its previous configuration (including the
//     already-ran flag); the failed configuration is simply not installed.
func (net *Network) Reset(cfg Config) error {
	return net.configure(cfg)
}

// configure is the shared implementation of New and Reset: it validates cfg
// before mutating anything, then (re)initializes the network in place,
// reusing existing allocations wherever capacities allow.
func (net *Network) configure(cfg Config) error {
	n := len(cfg.Strategies)
	if n == 0 {
		return errors.New("sim: no strategies")
	}
	for i, s := range cfg.Strategies {
		if s == nil {
			return fmt.Errorf("sim: nil strategy for processor %d", i+1)
		}
	}
	if net.sameTopology(n, cfg.Edges) {
		// Same communication graph as the previous configuration: keep the
		// link structures, just drain the queues.
		for i := range net.links {
			l := &net.links[i]
			l.head, l.tail = 0, 0
		}
	} else if err := net.buildTopology(n, cfg.Edges); err != nil {
		return err
	}
	net.n = n
	net.sched = cfg.Scheduler
	if net.sched == nil {
		net.sched = FIFOScheduler{}
	}
	// Resolve the concrete scheduler type once so the per-message delivery
	// loop never pays an interface call for the built-in schedulers.
	net.randSched = nil
	switch s := net.sched.(type) {
	case FIFOScheduler:
		net.schedKind = schedFIFO
	case LIFOScheduler:
		net.schedKind = schedLIFO
	case *RandomScheduler:
		net.schedKind = schedRandom
		net.randSched = s
	default:
		net.schedKind = schedGeneric
	}
	net.tracer = cfg.Tracer
	net.stepLimit = cfg.StepLimit
	if net.stepLimit <= 0 {
		net.stepLimit = 64*n*n + 4096
	}
	net.pendHead, net.pendTail = 0, 0
	net.steps, net.delivered, net.dropped, net.dropDeliver, net.terminated = 0, 0, 0, 0, 0
	net.ran = false
	if cap(net.procs) < n+1 {
		procs := make([]procState, n+1)
		copy(procs, net.procs)
		net.procs = procs
	} else {
		net.procs = net.procs[:n+1]
	}
	if cap(net.hot) < n+1 {
		net.hot = make([]hotProc, n+1)
		net.outLink = make([]int32, n+1)
	} else {
		net.hot = net.hot[:n+1]
		net.outLink = net.outLink[:n+1]
	}
	for i := 1; i <= n; i++ {
		p := &net.procs[i]
		p.strategy = cfg.Strategies[i-1]
		p.output = 0
		net.hot[i] = hotProc{outTo: -1, status: int32(StatusRunning)}
		net.outLink[i] = -1
		if ls := net.outLinks[i]; len(ls) > 0 {
			net.outLink[i] = int32(ls[0])
			net.hot[i].outTo = int32(net.links[ls[0]].to)
		}
		// Contexts carry no heap state under the counter-based Stream, so
		// fresh construction and arena recycling are the same three stores.
		p.ctx = NewContext(net, ProcID(i), cfg.Seed)
	}
	return nil
}

// sameTopology reports whether the network's current link structures encode
// exactly the given configuration (same size, same edges in the same order),
// in which case a Reset can skip edge validation and rebuild entirely.
func (net *Network) sameTopology(n int, edges []Edge) bool {
	if n != net.n || len(edges) != len(net.links) {
		return false
	}
	for i, e := range edges {
		if net.links[i].from != e.From || net.links[i].to != e.To {
			return false
		}
	}
	return true
}

// buildTopology validates the edge set and rebuilds the link structures,
// reusing slice capacity from any previous configuration.
func (net *Network) buildTopology(n int, edges []Edge) error {
	seen := make(map[Edge]bool, len(edges))
	for _, e := range edges {
		if e.From < 1 || int(e.From) > n || e.To < 1 || int(e.To) > n {
			return fmt.Errorf("sim: edge %d→%d out of range [1,%d]", e.From, e.To, n)
		}
		if e.From == e.To {
			return fmt.Errorf("sim: self-loop on processor %d", e.From)
		}
		if seen[e] {
			return fmt.Errorf("sim: duplicate edge %d→%d", e.From, e.To)
		}
		seen[e] = true
	}
	// Rewrite link slots in place so queue capacity grown by previous
	// configurations survives a topology rebuild.
	old := net.links[:cap(net.links)]
	if len(old) < len(edges) {
		grown := make([]link, len(edges))
		copy(grown, old)
		old = grown
	}
	net.links = old[:len(edges)]
	for i, e := range edges {
		l := &net.links[i]
		l.from, l.to = e.From, e.To
		l.head, l.tail = 0, 0
	}
	if cap(net.outLinks) < n+1 {
		net.outLinks = make([][]int, n+1)
	} else {
		net.outLinks = net.outLinks[:n+1]
	}
	for i := range net.outLinks {
		net.outLinks[i] = net.outLinks[i][:0]
	}
	for idx := range net.links {
		from := net.links[idx].from
		net.outLinks[from] = append(net.outLinks[from], idx)
	}
	return nil
}

var _ Backend = (*Network)(nil)

// Size implements Backend.
func (net *Network) Size() int { return net.n }

// Send implements Backend: enqueue on the processor's first outgoing link.
// This is the per-message primitive of every ring protocol, so the whole
// FIFO path — status checks, counters, the pending-ring push — is fused
// into one call frame that touches only the sender's and target's hot
// records: the destination rides in the route cache (whose −1 sentinel also
// encodes "sender already terminated"), and neither outLinks nor the link
// table is consulted.
func (net *Network) Send(from ProcID, value int64) {
	h := &net.hot[from]
	to := ProcID(h.outTo)
	if to < 0 {
		return
	}
	h.sent++
	if net.tracer != nil {
		net.tracer.OnSend(from, int(h.sent), to, value)
	}
	if net.hot[to].status != int32(StatusRunning) {
		// Dead link: the target has already produced its output, so the
		// message can never be delivered. Dropping it at send time keeps it
		// out of the pick loop entirely (it consumes no scheduler step and
		// no scheduler randomness).
		net.dropped++
		return
	}
	if net.schedKind != schedFIFO {
		net.links[net.outLink[from]].push(value)
		net.pushPending(int64(net.outLink[from]), value)
		return
	}
	if net.pendTail-net.pendHead == len(net.pend) {
		net.growPending()
	}
	net.pend[net.pendTail&(len(net.pend)-1)] = pendSlot{int64(from)<<32 | int64(to), value}
	net.pendTail++
}

// SendTo implements Backend: enqueue towards a specific neighbour.
func (net *Network) SendTo(from, to ProcID, value int64) {
	for _, l := range net.outLinks[from] {
		if net.links[l].to == to {
			net.sendOnLink(from, l, to, value)
			return
		}
	}
}

// sendOnLink is the generic enqueue used by SendTo; the default-link Send
// carries its own fused copy of this logic.
func (net *Network) sendOnLink(from ProcID, linkIdx int, to ProcID, value int64) {
	h := &net.hot[from]
	if h.status != int32(StatusRunning) {
		return
	}
	h.sent++
	if net.tracer != nil {
		net.tracer.OnSend(from, int(h.sent), to, value)
	}
	if net.hot[to].status != int32(StatusRunning) {
		// Dead link: see Send.
		net.dropped++
		return
	}
	meta := int64(from)<<32 | int64(to)
	if net.schedKind != schedFIFO {
		net.links[linkIdx].push(value)
		meta = int64(linkIdx)
	}
	net.pushPending(meta, value)
}

// pushPending appends one undelivered message to the pending ring, growing
// the backing slice (doubling) when full.
func (net *Network) pushPending(meta int64, value int64) {
	if net.pendTail-net.pendHead == len(net.pend) {
		net.growPending()
	}
	net.pend[net.pendTail&(len(net.pend)-1)] = pendSlot{meta, value}
	net.pendTail++
}

// growPending doubles the pending ring without rebasing pendHead or
// pendTail: the counters stay absolute across growth because pendHead
// doubles as the execution's step count (and the step-limit check), so the
// live entries are re-slotted at their absolute positions under the new
// mask instead of being compacted to the front.
func (net *Network) growPending() {
	newCap := len(net.pend) * 2
	if newCap == 0 {
		newCap = 64
	}
	grown := make([]pendSlot, newCap)
	oldMask := len(net.pend) - 1
	for i := net.pendHead; i < net.pendTail; i++ {
		grown[i&(newCap-1)] = net.pend[i&oldMask]
	}
	net.pend = grown
}

// Terminate implements Backend.
func (net *Network) Terminate(id ProcID, output int64, aborted bool) {
	h := &net.hot[id]
	if h.status != int32(StatusRunning) {
		return
	}
	if aborted {
		h.status = int32(StatusAborted)
	} else {
		h.status = int32(StatusTerminated)
		net.procs[id].output = output
	}
	// A terminated processor never sends again; clearing its route lets the
	// Send fast path fold the sender-alive check into the route load.
	h.outTo = -1
	net.terminated++
	if net.tracer != nil {
		net.tracer.OnTerminate(id, output, aborted)
	}
}

func (net *Network) pendingCount() int { return net.pendTail - net.pendHead }

// popPending removes and returns the link index of the pending entry at the
// given offset from the front. Offset 0 preserves exact FIFO order; other
// offsets move the front entry into the vacated slot, which randomized
// schedulers tolerate (they do not rely on the residual order) and which
// reproduces the historical LIFO delivery sequence exactly.
func (net *Network) popPending(offset int) int {
	mask := len(net.pend) - 1
	idx := (net.pendHead + offset) & mask
	l := net.pend[idx].meta
	if offset != 0 {
		net.pend[idx] = net.pend[net.pendHead&mask]
	}
	net.pendHead++
	return int(l)
}

// Run executes the configuration to completion and reports the outcome.
// A Network is single-use per configuration; calling Run twice without an
// intervening Reset returns the first result.
func (net *Network) Run() Result {
	if net.ran {
		return net.result()
	}
	net.ran = true

	for i := 1; i <= net.n; i++ {
		p := &net.procs[i]
		p.strategy.Init(&p.ctx)
	}

	if net.schedKind == schedFIFO {
		net.runFIFO()
	} else {
		net.runPicked()
	}
	return net.result()
}

// runFIFO is the delivery loop for the default global-FIFO schedule: the
// oldest pending message is always next, its payload and routing (packed
// from<<32|to) ride inline in the pending ring, and no scheduler, per-link
// queue or link-table access happens at all. Step and delivery counters are
// derived once at loop exit: pendHead is the absolute pop counter, so it IS
// the step count, and deliveries are the steps that did not hit a dead
// processor — the hot loop maintains neither.
func (net *Network) runFIFO() {
	for net.pendTail > net.pendHead && net.terminated < net.n && net.pendHead < net.stepLimit {
		slot := net.pend[net.pendHead&(len(net.pend)-1)]
		net.pendHead++
		from, to := ProcID(slot.meta>>32), ProcID(slot.meta&0xffffffff)
		ht := &net.hot[to]
		if ht.status != int32(StatusRunning) {
			net.dropped++
			net.dropDeliver++
			continue
		}
		ht.received++
		if net.tracer != nil {
			net.tracer.OnDeliver(to, int(ht.received), from, slot.val)
		}
		target := &net.procs[to]
		target.strategy.Receive(&target.ctx, from, slot.val)
	}
	net.steps = net.pendHead
	net.delivered = net.pendHead - net.dropDeliver
}

// runPicked is the delivery loop for every non-FIFO schedule. The scheduler
// picks a pending entry; the delivered payload is the picked link's oldest
// undelivered message (links are FIFO in the model regardless of the global
// schedule). Built-in schedulers dispatch on the pre-resolved concrete type;
// only foreign Scheduler implementations pay the interface call.
func (net *Network) runPicked() {
	defer func() {
		net.steps = net.pendHead
		net.delivered = net.pendHead - net.dropDeliver
	}()
	for {
		k := net.pendTail - net.pendHead
		if k == 0 || net.terminated >= net.n || net.pendHead >= net.stepLimit {
			return
		}
		offset := 0
		if k > 1 {
			switch net.schedKind {
			case schedLIFO:
				offset = k - 1
			case schedRandom:
				offset = net.randSched.rng.Intn(k)
			default:
				offset = net.sched.Pick(k)
				if offset < 0 || offset >= k {
					offset = 0
				}
			}
		}
		l := &net.links[net.popPending(offset)]
		value := l.pop()
		ht := &net.hot[l.to]
		if ht.status != int32(StatusRunning) {
			net.dropped++
			net.dropDeliver++
			continue
		}
		ht.received++
		if net.tracer != nil {
			net.tracer.OnDeliver(l.to, int(ht.received), l.from, value)
		}
		target := &net.procs[l.to]
		target.strategy.Receive(&target.ctx, l.from, value)
	}
}

// Sent returns how many messages processor id has sent so far. It is used by
// analyses that inspect the network mid-run via a Tracer.
func (net *Network) Sent(id ProcID) int { return int(net.hot[id].sent) }

// Received returns how many messages processor id has processed so far.
func (net *Network) Received(id ProcID) int { return int(net.hot[id].received) }
