package sim

import (
	"errors"
	"fmt"
)

// Status is the lifecycle state of a processor.
type Status int

// Processor lifecycle states.
const (
	// StatusRunning means the processor has not yet produced an output.
	StatusRunning Status = iota + 1
	// StatusTerminated means the processor terminated with a valid output.
	StatusTerminated
	// StatusAborted means the processor terminated with output ⊥.
	StatusAborted
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusTerminated:
		return "terminated"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Edge is a directed FIFO link of the communication graph.
type Edge struct {
	From ProcID
	To   ProcID
}

// Config describes one execution of a protocol (or adversarial deviation).
type Config struct {
	// Strategies[i] drives processor i+1. Its length determines n.
	// Strategy objects carry per-execution state, so build a fresh vector
	// for every configuration (as every Protocol.Strategies call does);
	// passing objects that already ran an execution — including to a
	// Network Reset — yields undefined behaviour unless their Init fully
	// re-establishes initial state.
	Strategies []Strategy

	// Edges are the directed FIFO links. Use RingEdges for the
	// unidirectional ring topology.
	Edges []Edge

	// Seed determines all processor-local randomness for the execution.
	Seed int64

	// Scheduler picks the delivery order among pending messages. It must
	// be oblivious (payload-independent). Defaults to FIFO order, which on
	// a unidirectional ring is equivalent to every other schedule.
	Scheduler Scheduler

	// Tracer, if non-nil, observes every send, delivery and termination.
	Tracer Tracer

	// StepLimit bounds the number of deliveries; executions exceeding it
	// are classified as running forever (outcome FAIL). Defaults to
	// 64·n² + 4096, far above any protocol in this repository.
	StepLimit int
}

type link struct {
	from  ProcID
	to    ProcID
	queue []int64
	head  int
}

func (l *link) push(v int64) { l.queue = append(l.queue, v) }

func (l *link) pop() int64 {
	v := l.queue[l.head]
	l.head++
	if l.head > 1024 && l.head*2 > len(l.queue) {
		l.queue = append(l.queue[:0], l.queue[l.head:]...)
		l.head = 0
	}
	return v
}

type procState struct {
	strategy Strategy
	ctx      Context
	status   Status
	output   int64
	sent     int
	received int
}

// Network is an executor for one configuration. Build with New, run with
// Run. A Network is single-use per configuration: Run executes at most once
// until Reset reinstates a (possibly different) configuration on the same
// backing memory, which is how trial arenas run thousands of executions
// without rebuilding the network each time.
type Network struct {
	n        int
	procs    []procState // index by ProcID; slot 0 unused
	links    []link
	outLinks [][]int // per ProcID, indices into links

	// pending is a deque of link indices, one entry per undelivered
	// message, in global send order.
	pending  []int
	pendHead int

	sched      Scheduler
	tracer     Tracer
	stepLimit  int
	steps      int
	delivered  int
	dropped    int
	terminated int
	ran        bool

	// outBuf and statBuf back the Result of a reused network, so repeated
	// Reset/Run cycles do not allocate fresh result slices. See result().
	outBuf  []int64
	statBuf []Status
}

// RingEdges returns the edge set of the unidirectional ring 1→2→…→n→1.
func RingEdges(n int) []Edge {
	edges := make([]Edge, n)
	for i := 1; i <= n; i++ {
		to := ProcID(i%n + 1)
		edges[i-1] = Edge{From: ProcID(i), To: to}
	}
	return edges
}

// New validates the configuration and builds an executable network.
func New(cfg Config) (*Network, error) {
	net := &Network{}
	if err := net.configure(cfg); err != nil {
		return nil, err
	}
	return net, nil
}

// Reset reinstates the initial state of cfg on the network's existing
// backing memory: processor slots, link queues, the pending deque, the
// per-processor PRNGs and the result buffers are all recycled instead of
// reallocated, and only a topology change (different size or edge set)
// rebuilds the link structures. A Reset network runs cfg exactly as a
// freshly constructed one would — bit-for-bit, including every PRNG stream —
// which is what lets trial arenas recycle one Network across thousands of
// trials (enforced by TestResetMatchesFresh and the scenario-wide property
// test).
//
// Two caveats, both consequences of the recycling:
//
//   - The Result of a previous Run on this network aliases the recycled
//     buffers; it is invalidated by Reset. Copy it first (Result.Clone) if
//     it must outlive the next trial.
//   - Reset validates the whole configuration before mutating anything, so
//     on error the network keeps its previous configuration (including the
//     already-ran flag); the failed configuration is simply not installed.
func (net *Network) Reset(cfg Config) error {
	return net.configure(cfg)
}

// configure is the shared implementation of New and Reset: it validates cfg
// before mutating anything, then (re)initializes the network in place,
// reusing existing allocations wherever capacities allow.
func (net *Network) configure(cfg Config) error {
	n := len(cfg.Strategies)
	if n == 0 {
		return errors.New("sim: no strategies")
	}
	for i, s := range cfg.Strategies {
		if s == nil {
			return fmt.Errorf("sim: nil strategy for processor %d", i+1)
		}
	}
	if net.sameTopology(n, cfg.Edges) {
		// Same communication graph as the previous configuration: keep the
		// link structures, just drain the queues.
		for i := range net.links {
			l := &net.links[i]
			l.queue = l.queue[:0]
			l.head = 0
		}
	} else if err := net.buildTopology(n, cfg.Edges); err != nil {
		return err
	}
	net.n = n
	net.sched = cfg.Scheduler
	if net.sched == nil {
		net.sched = FIFOScheduler{}
	}
	net.tracer = cfg.Tracer
	net.stepLimit = cfg.StepLimit
	if net.stepLimit <= 0 {
		net.stepLimit = 64*n*n + 4096
	}
	net.pending = net.pending[:0]
	net.pendHead = 0
	net.steps, net.delivered, net.dropped, net.terminated = 0, 0, 0, 0
	net.ran = false
	if cap(net.procs) < n+1 {
		procs := make([]procState, n+1)
		// Carry over existing slots: their contexts hold reusable PRNG
		// state, reseeded below.
		copy(procs, net.procs)
		net.procs = procs
	} else {
		net.procs = net.procs[:n+1]
	}
	for i := 1; i <= n; i++ {
		p := &net.procs[i]
		p.strategy = cfg.Strategies[i-1]
		p.status = StatusRunning
		p.output = 0
		p.sent = 0
		p.received = 0
		if p.ctx.rng == nil {
			p.ctx = NewContext(net, ProcID(i), cfg.Seed)
		} else {
			// Recycled slot: the context already points at this network
			// and holds an allocated PRNG; reseeding reproduces exactly
			// the stream a fresh NewContext would draw.
			p.ctx.backend = net
			p.ctx.Reseed(cfg.Seed)
		}
	}
	return nil
}

// sameTopology reports whether the network's current link structures encode
// exactly the given configuration (same size, same edges in the same order),
// in which case a Reset can skip edge validation and rebuild entirely.
func (net *Network) sameTopology(n int, edges []Edge) bool {
	if n != net.n || len(edges) != len(net.links) {
		return false
	}
	for i, e := range edges {
		if net.links[i].from != e.From || net.links[i].to != e.To {
			return false
		}
	}
	return true
}

// buildTopology validates the edge set and rebuilds the link structures,
// reusing slice capacity from any previous configuration.
func (net *Network) buildTopology(n int, edges []Edge) error {
	seen := make(map[Edge]bool, len(edges))
	for _, e := range edges {
		if e.From < 1 || int(e.From) > n || e.To < 1 || int(e.To) > n {
			return fmt.Errorf("sim: edge %d→%d out of range [1,%d]", e.From, e.To, n)
		}
		if e.From == e.To {
			return fmt.Errorf("sim: self-loop on processor %d", e.From)
		}
		if seen[e] {
			return fmt.Errorf("sim: duplicate edge %d→%d", e.From, e.To)
		}
		seen[e] = true
	}
	// Rewrite link slots in place so queue capacity grown by previous
	// configurations survives a topology rebuild.
	old := net.links[:cap(net.links)]
	if len(old) < len(edges) {
		grown := make([]link, len(edges))
		copy(grown, old)
		old = grown
	}
	net.links = old[:len(edges)]
	for i, e := range edges {
		l := &net.links[i]
		l.from, l.to = e.From, e.To
		l.queue = l.queue[:0]
		l.head = 0
	}
	if cap(net.outLinks) < n+1 {
		net.outLinks = make([][]int, n+1)
	} else {
		net.outLinks = net.outLinks[:n+1]
	}
	for i := range net.outLinks {
		net.outLinks[i] = net.outLinks[i][:0]
	}
	for idx := range net.links {
		from := net.links[idx].from
		net.outLinks[from] = append(net.outLinks[from], idx)
	}
	return nil
}

var _ Backend = (*Network)(nil)

// Size implements Backend.
func (net *Network) Size() int { return net.n }

// Send implements Backend: enqueue on the processor's first outgoing link.
func (net *Network) Send(from ProcID, value int64) {
	links := net.outLinks[from]
	if len(links) == 0 {
		return
	}
	net.sendOnLink(from, links[0], value)
}

// SendTo implements Backend: enqueue towards a specific neighbour.
func (net *Network) SendTo(from, to ProcID, value int64) {
	for _, l := range net.outLinks[from] {
		if net.links[l].to == to {
			net.sendOnLink(from, l, value)
			return
		}
	}
}

func (net *Network) sendOnLink(from ProcID, linkIdx int, value int64) {
	p := &net.procs[from]
	if p.status != StatusRunning {
		return
	}
	p.sent++
	net.links[linkIdx].push(value)
	net.pending = append(net.pending, linkIdx)
	if net.tracer != nil {
		net.tracer.OnSend(from, p.sent, net.links[linkIdx].to, value)
	}
}

// Terminate implements Backend.
func (net *Network) Terminate(id ProcID, output int64, aborted bool) {
	p := &net.procs[id]
	if p.status != StatusRunning {
		return
	}
	if aborted {
		p.status = StatusAborted
	} else {
		p.status = StatusTerminated
		p.output = output
	}
	net.terminated++
	if net.tracer != nil {
		net.tracer.OnTerminate(id, output, aborted)
	}
}

func (net *Network) pendingCount() int { return len(net.pending) - net.pendHead }

// popPending removes and returns the pending entry at the given offset from
// the front. Offset 0 preserves exact FIFO order; other offsets are used by
// randomized schedulers, which do not rely on the residual order.
func (net *Network) popPending(offset int) int {
	idx := net.pendHead + offset
	l := net.pending[idx]
	if offset != 0 {
		net.pending[idx] = net.pending[net.pendHead]
	}
	net.pendHead++
	if net.pendHead > 4096 && net.pendHead*2 > len(net.pending) {
		net.pending = append(net.pending[:0], net.pending[net.pendHead:]...)
		net.pendHead = 0
	}
	return l
}

// Run executes the configuration to completion and reports the outcome.
// A Network is single-use per configuration; calling Run twice without an
// intervening Reset returns the first result.
func (net *Network) Run() Result {
	if net.ran {
		return net.result()
	}
	net.ran = true

	for i := 1; i <= net.n; i++ {
		p := &net.procs[i]
		p.strategy.Init(&p.ctx)
	}

	for net.pendingCount() > 0 && net.terminated < net.n && net.steps < net.stepLimit {
		net.steps++
		offset := 0
		if k := net.pendingCount(); k > 1 {
			offset = net.sched.Pick(k)
			if offset < 0 || offset >= k {
				offset = 0
			}
		}
		linkIdx := net.popPending(offset)
		l := &net.links[linkIdx]
		value := l.pop()
		target := &net.procs[l.to]
		if target.status != StatusRunning {
			net.dropped++
			continue
		}
		net.delivered++
		target.received++
		if net.tracer != nil {
			net.tracer.OnDeliver(l.to, target.received, l.from, value)
		}
		target.strategy.Receive(&target.ctx, l.from, value)
	}
	return net.result()
}

// Sent returns how many messages processor id has sent so far. It is used by
// analyses that inspect the network mid-run via a Tracer.
func (net *Network) Sent(id ProcID) int { return net.procs[id].sent }

// Received returns how many messages processor id has processed so far.
func (net *Network) Received(id ProcID) int { return net.procs[id].received }
