package stats

import (
	"errors"
	"math"
	"sort"
)

// WilsonInterval returns the Wilson score interval for a binomial proportion
// at the given z (use 1.96 for 95%). It behaves sensibly at the extremes
// wins = 0 and wins = trials, unlike the normal approximation.
func WilsonInterval(wins, trials int, z float64) (lo, hi float64) {
	if trials == 0 {
		return 0, 1
	}
	n := float64(trials)
	p := float64(wins) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// RateSnapshot is one incremental estimate of a binomial proportion: the
// observed rate after Trials observations together with its Wilson score
// interval. Streaming consumers (the service daemon's NDJSON job streams)
// emit a sequence of snapshots as a trial batch accumulates; because each is
// computed on a deterministic chunk-ordered prefix, the sequence itself is
// reproducible, not just the final value.
type RateSnapshot struct {
	// Wins and Trials are the raw counts behind the estimate.
	Wins   int `json:"wins"`
	Trials int `json:"trials"`
	// Rate is Wins/Trials (0 before any observation).
	Rate float64 `json:"rate"`
	// Lo and Hi bound the Wilson score interval at the snapshot's z.
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// NewRateSnapshot captures the estimate after wins successes in trials
// observations, with a Wilson interval at the given z (1.96 for 95%).
func NewRateSnapshot(wins, trials int, z float64) RateSnapshot {
	s := RateSnapshot{Wins: wins, Trials: trials}
	if trials > 0 {
		s.Rate = float64(wins) / float64(trials)
	}
	s.Lo, s.Hi = WilsonInterval(wins, trials, z)
	return s
}

// Resolved reports whether the interval is narrower than halfWidth on both
// sides of the point estimate — the same criterion the adaptive stopping
// rules use.
func (s RateSnapshot) Resolved(halfWidth float64) bool {
	return s.Rate-s.Lo < halfWidth && s.Hi-s.Rate < halfWidth
}

// ChiSquareUniform computes the chi-square statistic and p-value for the
// hypothesis that counts were drawn uniformly over their cells.
func ChiSquareUniform(counts []int) (statistic, pValue float64, err error) {
	k := len(counts)
	if k < 2 {
		return 0, 0, errors.New("stats: need at least 2 cells")
	}
	total := 0
	for _, c := range counts {
		if c < 0 {
			return 0, 0, errors.New("stats: negative count")
		}
		total += c
	}
	if total == 0 {
		return 0, 0, errors.New("stats: no observations")
	}
	expected := float64(total) / float64(k)
	for _, c := range counts {
		d := float64(c) - expected
		statistic += d * d / expected
	}
	pValue = ChiSquareSurvival(statistic, float64(k-1))
	return statistic, pValue, nil
}

// ChiSquareHomogeneity tests whether two count vectors over the same cells
// were drawn from the same (unknown) distribution: the 2×k contingency
// test behind the cross-protocol differential matrix. Cells empty in both
// samples are dropped; the statistic is Σ (o−e)²/e over the 2×k' table of
// kept cells with the usual product-of-marginals expectations, and the
// p-value uses df = k'−1.
func ChiSquareHomogeneity(a, b []int) (statistic, pValue float64, err error) {
	if len(a) != len(b) {
		return 0, 0, errors.New("stats: homogeneity needs equal cell counts")
	}
	var totalA, totalB int
	kept := 0
	for i := range a {
		if a[i] < 0 || b[i] < 0 {
			return 0, 0, errors.New("stats: negative count")
		}
		totalA += a[i]
		totalB += b[i]
		if a[i]+b[i] > 0 {
			kept++
		}
	}
	if totalA == 0 || totalB == 0 {
		return 0, 0, errors.New("stats: empty sample")
	}
	if kept < 2 {
		return 0, 0, errors.New("stats: need at least 2 occupied cells")
	}
	grand := float64(totalA + totalB)
	for i := range a {
		col := a[i] + b[i]
		if col == 0 {
			continue
		}
		for _, obs := range []struct {
			o   int
			row int
		}{{a[i], totalA}, {b[i], totalB}} {
			e := float64(obs.row) * float64(col) / grand
			d := float64(obs.o) - e
			statistic += d * d / e
		}
	}
	pValue = ChiSquareSurvival(statistic, float64(kept-1))
	return statistic, pValue, nil
}

// ChiSquareSurvival returns P(X ≥ x) for a chi-square distribution with df
// degrees of freedom: the regularized upper incomplete gamma Q(df/2, x/2).
func ChiSquareSurvival(x, df float64) float64 {
	if x <= 0 {
		return 1
	}
	return upperGammaRegularized(df/2, x/2)
}

// upperGammaRegularized computes Q(a, x) = Γ(a,x)/Γ(a) using the series for
// x < a+1 and the continued fraction otherwise (Numerical Recipes style).
func upperGammaRegularized(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 1
	case x < a+1:
		return 1 - lowerGammaSeries(a, x)
	default:
		return upperGammaContinuedFraction(a, x)
	}
}

func lowerGammaSeries(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 1e-14
	)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func upperGammaContinuedFraction(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 1e-14
		tiny    = 1e-300
	)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// TotalVariationFromUniform returns ½·Σ|p_i − 1/k| for the empirical
// distribution given by counts.
func TotalVariationFromUniform(counts []int) float64 {
	k := len(counts)
	if k == 0 {
		return 0
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	var tv float64
	u := 1 / float64(k)
	for _, c := range counts {
		tv += math.Abs(float64(c)/float64(total) - u)
	}
	return tv / 2
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[i]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}
