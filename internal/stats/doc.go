// Package stats provides the statistical machinery behind every experiment:
// binomial confidence intervals, chi-square tests, total variation distance,
// and summary helpers. Only the standard library is used; the chi-square
// p-value comes from the regularized incomplete gamma function evaluated by
// series/continued fraction.
//
// # How the suite uses it
//
//   - WilsonInterval backs the adaptive early-stopping rules of the trial
//     engine (ring.StopWhenResolved): a batch halts once the empirical ε
//     estimate of Definition 2.3 is resolved to a target half-width.
//   - ChiSquareUniform checks honest leader distributions against the
//     uniform fairness claim of the paper's protocols.
//   - ChiSquareHomogeneity drives the scenario differential matrix: any
//     two uniform-election scenarios must be statistically
//     indistinguishable, whatever their protocol, topology or scheduler.
//   - TotalVariationFromUniform quantifies attack strength in the
//     experiment tables.
//
// # Invariants
//
//   - Everything is deterministic pure computation: no randomness, no
//     global state, safe for concurrent use.
//   - Functions taking count slices treat them as read-only.
//   - P-value helpers are accurate to a few ulps over the df ranges the
//     experiments use (df ≤ a few hundred); they are not a general-purpose
//     special-function library.
package stats
