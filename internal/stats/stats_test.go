package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestWilsonInterval(t *testing.T) {
	tests := []struct {
		wins, trials int
		wantLoBelow  float64
		wantHiAbove  float64
	}{
		{50, 100, 0.5, 0.5},
		{0, 100, 0.0001, 0.0},
		{100, 100, 1.0, 0.96},
		{1, 1000, 0.002, 0.0005},
	}
	for _, tt := range tests {
		lo, hi := WilsonInterval(tt.wins, tt.trials, 1.96)
		if lo > tt.wantLoBelow {
			t.Errorf("Wilson(%d/%d): lo=%v > %v", tt.wins, tt.trials, lo, tt.wantLoBelow)
		}
		if hi < tt.wantHiAbove {
			t.Errorf("Wilson(%d/%d): hi=%v < %v", tt.wins, tt.trials, hi, tt.wantHiAbove)
		}
		if lo < 0 || hi > 1 || lo > hi {
			t.Errorf("Wilson(%d/%d): degenerate interval [%v,%v]", tt.wins, tt.trials, lo, hi)
		}
	}
}

func TestWilsonIntervalCoverage(t *testing.T) {
	// A z=3.3 interval covers the truth ≈99.9% of the time; over 400
	// random binomials a couple of misses are expected, many are a bug.
	rng := rand.New(rand.NewSource(7))
	misses := 0
	const reps = 400
	for i := 0; i < reps; i++ {
		p := rng.Float64()
		trials := 200 + rng.Intn(800)
		wins := 0
		for j := 0; j < trials; j++ {
			if rng.Float64() < p {
				wins++
			}
		}
		lo, hi := WilsonInterval(wins, trials, 3.3)
		if p < lo || p > hi {
			misses++
		}
	}
	if misses > 5 {
		t.Errorf("interval missed the truth %d/%d times at z=3.3", misses, reps)
	}
}

func TestChiSquareSurvivalKnownValues(t *testing.T) {
	// Reference values from standard chi-square tables.
	tests := []struct {
		x, df, want float64
	}{
		{3.841, 1, 0.05},
		{5.991, 2, 0.05},
		{16.919, 9, 0.05},
		{2.706, 1, 0.10},
		{23.209, 10, 0.01},
	}
	for _, tt := range tests {
		got := ChiSquareSurvival(tt.x, tt.df)
		if math.Abs(got-tt.want) > 0.002 {
			t.Errorf("ChiSquareSurvival(%v, %v) = %v, want ≈ %v", tt.x, tt.df, got, tt.want)
		}
	}
}

func TestChiSquareUniformAcceptsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rejected := 0
	const reps = 50
	for rep := 0; rep < reps; rep++ {
		counts := make([]int, 16)
		for i := 0; i < 8000; i++ {
			counts[rng.Intn(16)]++
		}
		_, p, err := ChiSquareUniform(counts)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0.01 {
			rejected++
		}
	}
	if rejected > 4 { // expect ≈ 0.5 rejections at the 1% level
		t.Errorf("rejected uniform data %d/%d times at 1%%", rejected, reps)
	}
}

func TestChiSquareUniformRejectsSkew(t *testing.T) {
	counts := make([]int, 16)
	for i := range counts {
		counts[i] = 100
	}
	counts[3] = 400
	_, p, err := ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("p=%v for grossly skewed data; want ≈ 0", p)
	}
}

func TestChiSquareUniformErrors(t *testing.T) {
	if _, _, err := ChiSquareUniform([]int{5}); err == nil {
		t.Error("single cell accepted")
	}
	if _, _, err := ChiSquareUniform([]int{0, 0}); err == nil {
		t.Error("empty data accepted")
	}
	if _, _, err := ChiSquareUniform([]int{1, -1}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestChiSquareHomogeneityAcceptsSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rejected := 0
	const reps = 50
	for rep := 0; rep < reps; rep++ {
		a, b := make([]int, 12), make([]int, 12)
		for i := 0; i < 6000; i++ {
			a[rng.Intn(12)]++
			b[rng.Intn(12)]++
		}
		_, p, err := ChiSquareHomogeneity(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0.01 {
			rejected++
		}
	}
	if rejected > 4 { // expect ≈ 0.5 rejections at the 1% level
		t.Errorf("rejected homogeneous data %d/%d times at 1%%", rejected, reps)
	}
}

func TestChiSquareHomogeneityRejectsDifferentDistributions(t *testing.T) {
	a, b := make([]int, 10), make([]int, 10)
	for i := range a {
		a[i] = 200
		b[i] = 200
	}
	b[0] = 800 // b is heavily biased toward cell 0
	_, p, err := ChiSquareHomogeneity(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-9 {
		t.Errorf("p=%v for grossly different samples; want ≈ 0", p)
	}
}

func TestChiSquareHomogeneityDropsEmptyCells(t *testing.T) {
	// Identical samples concentrated on two cells: statistic 0, p = 1.
	a := []int{0, 50, 0, 50, 0}
	b := []int{0, 50, 0, 50, 0}
	stat, p, err := ChiSquareHomogeneity(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if stat != 0 || p < 0.999 {
		t.Errorf("identical samples: stat=%v p=%v, want 0 and ≈ 1", stat, p)
	}
}

func TestChiSquareHomogeneityErrors(t *testing.T) {
	if _, _, err := ChiSquareHomogeneity([]int{1, 2}, []int{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := ChiSquareHomogeneity([]int{1, 2}, []int{0, 0}); err == nil {
		t.Error("empty sample accepted")
	}
	if _, _, err := ChiSquareHomogeneity([]int{1, -2}, []int{1, 2}); err == nil {
		t.Error("negative count accepted")
	}
	if _, _, err := ChiSquareHomogeneity([]int{3, 0}, []int{2, 0}); err == nil {
		t.Error("single occupied cell accepted")
	}
}

func TestTotalVariation(t *testing.T) {
	if tv := TotalVariationFromUniform([]int{10, 10, 10, 10}); tv != 0 {
		t.Errorf("uniform TV = %v, want 0", tv)
	}
	if tv := TotalVariationFromUniform([]int{40, 0, 0, 0}); math.Abs(tv-0.75) > 1e-12 {
		t.Errorf("point-mass TV = %v, want 0.75", tv)
	}
}

func TestMeanStdDevQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if m := Mean(xs); m != 3 {
		t.Errorf("mean = %v", m)
	}
	if s := StdDev(xs); math.Abs(s-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("stddev = %v", s)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("min = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("max = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Errorf("q25 = %v", q)
	}
}
