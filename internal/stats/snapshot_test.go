package stats

import "testing"

func TestRateSnapshot(t *testing.T) {
	s := NewRateSnapshot(30, 100, 1.96)
	if s.Rate != 0.3 {
		t.Fatalf("rate = %f, want 0.3", s.Rate)
	}
	lo, hi := WilsonInterval(30, 100, 1.96)
	if s.Lo != lo || s.Hi != hi {
		t.Fatalf("interval (%f, %f) != WilsonInterval (%f, %f)", s.Lo, s.Hi, lo, hi)
	}
	if s.Lo > s.Rate || s.Hi < s.Rate {
		t.Fatal("interval does not bracket the point estimate")
	}
	if s.Resolved(0.01) {
		t.Fatal("wide interval reported resolved at half-width 0.01")
	}
	if !s.Resolved(0.5) {
		t.Fatal("interval not resolved at half-width 0.5")
	}

	empty := NewRateSnapshot(0, 0, 1.96)
	if empty.Rate != 0 || empty.Lo != 0 || empty.Hi != 1 {
		t.Fatalf("empty snapshot = %+v, want rate 0 over [0,1]", empty)
	}
	if empty.Resolved(0.4) {
		t.Fatal("empty snapshot cannot be resolved")
	}

	// Snapshots tighten monotonically as trials accumulate at a fixed rate.
	prev := NewRateSnapshot(3, 10, 1.96)
	for _, trials := range []int{100, 1000, 10000} {
		next := NewRateSnapshot(3*trials/10, trials, 1.96)
		if next.Hi-next.Lo >= prev.Hi-prev.Lo {
			t.Fatalf("interval did not tighten at %d trials", trials)
		}
		prev = next
	}
}
