package stats

import (
	"math"
	"testing"
)

// TestNormalQuantileKnownValues pins the quantile against textbook critical
// values.
func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.995, 2.5758293035489004},
		{0.9995, 3.2905267314919255},
		{0.025, -1.959963984540054},
		{0.841344746068543, 1}, // Φ(1)
	}
	for _, c := range cases {
		got := NormalQuantile(c.p)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

// TestNormalQuantileRoundTrip checks Φ(Φ⁻¹(p)) = p across the interval,
// including deep tails where the Bonferroni corrections live.
func TestNormalQuantileRoundTrip(t *testing.T) {
	cdf := func(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }
	for _, p := range []float64{1e-12, 1e-8, 1e-4, 0.01, 0.3, 0.5, 0.7, 0.99, 1 - 1e-8} {
		x := NormalQuantile(p)
		if got := cdf(x); math.Abs(got-p) > 1e-10*math.Max(p, 1-p)+1e-15 {
			t.Errorf("Φ(Φ⁻¹(%g)) = %g", p, got)
		}
	}
}

// TestNormalQuantileEdges checks the boundary conventions.
func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("edges should be ±Inf")
	}
	if !math.IsNaN(NormalQuantile(math.NaN())) {
		t.Error("NaN should propagate")
	}
}

// TestBonferroniZ checks the corrected critical value grows with the number
// of comparisons and degenerates to plain two-sided z at m = 1.
func TestBonferroniZ(t *testing.T) {
	if z := BonferroniZ(0.05, 1); math.Abs(z-1.959963984540054) > 1e-9 {
		t.Errorf("BonferroniZ(0.05, 1) = %v", z)
	}
	prev := 0.0
	for _, m := range []int{1, 2, 5, 20, 100, 1000} {
		z := BonferroniZ(0.05, m)
		if z <= prev {
			t.Errorf("BonferroniZ not increasing at m=%d: %v ≤ %v", m, z, prev)
		}
		prev = z
	}
	// The correction must match the direct quantile.
	if z, want := BonferroniZ(0.01, 40), NormalQuantile(1-0.01/80); math.Abs(z-want) > 1e-12 {
		t.Errorf("BonferroniZ(0.01, 40) = %v, want %v", z, want)
	}
}
