// Package wakeup implements the wake-up phase of the original Abraham et
// al. protocol (discussed in Appendix H): processors do not know each
// other's identities in advance, so every processor first circulates its id
// around the ring. When a processor's own id returns it has seen all n ids
// in ring order; all processors then agree that the minimal id acts as the
// origin and run A-LEADuni re-indexed accordingly.
//
// The paper notes that the Section 4 attacks survive this extension — the
// adversaries simply participate honestly in the wake-up — while the
// resilience proofs do not obviously extend (adversaries might abuse the
// phase to move information). This package makes the first half executable:
// attacks.WakeupRushing forces outcomes against the combined protocol
// exactly as against bare A-LEADuni.
//
// Message typing is positional, as everywhere in the reproduction: the
// first n messages a processor handles are wake-up ids, everything after is
// the A-LEADuni flow. FIFO links make the phases separate cleanly.
package wakeup

import (
	"fmt"

	"repro/internal/ring"
	"repro/internal/sim"
)

// Protocol is A-LEADuni preceded by the id wake-up phase.
type Protocol struct {
	// IDs optionally pins each position's id (IDs[pos−1]); nil draws
	// distinct random 62-bit ids at wake-up. Ids must be non-negative
	// and pairwise distinct.
	IDs []int64
}

var _ ring.Protocol = Protocol{}

// New returns the combined protocol with random ids.
func New() Protocol { return Protocol{} }

// NewWithIDs pins the ids, e.g. to place the origin deterministically.
func NewWithIDs(ids []int64) Protocol { return Protocol{IDs: ids} }

// Name implements ring.Protocol.
func (Protocol) Name() string { return "Wakeup+A-LEADuni" }

// BatchSafe marks the protocol's strategies as fully re-initialized by Init,
// so one strategy vector can serve every trial of an engine chunk.
func (Protocol) BatchSafe() {}

// Strategies implements ring.Protocol.
func (p Protocol) Strategies(n int) ([]sim.Strategy, error) {
	if n < 2 {
		return nil, fmt.Errorf("wakeup: need n ≥ 2, got %d", n)
	}
	if p.IDs != nil {
		if len(p.IDs) != n {
			return nil, fmt.Errorf("wakeup: %d ids for n=%d", len(p.IDs), n)
		}
		seen := make(map[int64]bool, n)
		for _, id := range p.IDs {
			if id < 0 || seen[id] {
				return nil, fmt.Errorf("wakeup: ids must be distinct and non-negative")
			}
			seen[id] = true
		}
	}
	strategies := make([]sim.Strategy, n)
	for i := 0; i < n; i++ {
		part := &participant{n: n, pos: i + 1}
		if p.IDs != nil {
			part.id = p.IDs[i]
			part.idPinned = true
		}
		strategies[i] = part
	}
	return strategies, nil
}

// participant runs the wake-up phase and then A-LEADuni in the learned
// indexing.
type participant struct {
	n        int
	pos      int
	id       int64
	idPinned bool

	// Wake-up state: ids in arrival order; ids[j] belongs to the ring
	// position j hops behind us.
	wakeSeen int
	ids      []int64

	// Election state (A-LEADuni re-indexed).
	originPos int // ring position acting as origin (minimal id)
	isOrigin  bool
	secret    int64
	buffer    int64
	sum       int64
	received  int
}

var _ sim.Strategy = (*participant)(nil)

func (p *participant) Init(ctx *sim.Context) {
	// Full state reset: strategy objects are reused across batched trials.
	p.wakeSeen = 0
	p.originPos, p.isOrigin = 0, false
	p.secret, p.buffer, p.sum, p.received = 0, 0, 0, 0
	if !p.idPinned {
		p.id = ctx.Rand().Int63()
	}
	if len(p.ids) != p.n+1 {
		p.ids = make([]int64, p.n+1)
	} else {
		clear(p.ids)
	}
	ctx.Send(p.id)
}

func (p *participant) Receive(ctx *sim.Context, from sim.ProcID, value int64) {
	if p.wakeSeen < p.n {
		p.wakeUpStep(ctx, value)
		return
	}
	p.electionStep(ctx, value)
}

func (p *participant) wakeUpStep(ctx *sim.Context, value int64) {
	p.wakeSeen++
	p.ids[p.wakeSeen] = value
	if p.wakeSeen < p.n {
		ctx.Send(value) // forward foreign ids
		return
	}
	// Our own id returned: we know every id in ring order.
	if value != p.id {
		ctx.Abort() // the ring is corrupted
		return
	}
	minJ := 1
	for j := 2; j <= p.n; j++ {
		if p.ids[j] < p.ids[minJ] {
			minJ = j
		}
	}
	// ids[j] belongs to position (pos − j) mod n.
	p.originPos = (p.pos-minJ-1+2*p.n)%p.n + 1
	p.isOrigin = p.originPos == p.pos
	p.secret = ctx.Rand().Int63n(int64(p.n))
	if p.isOrigin {
		ctx.Send(p.secret) // the origin opens the election
	} else {
		p.buffer = p.secret
	}
}

// electionStep is A-LEADuni (Section 3) with the origin at originPos; the
// final output is the winning ring position, identically computable by
// every processor from the common sum.
func (p *participant) electionStep(ctx *sim.Context, value int64) {
	value = ring.Mod(value, p.n)
	p.received++
	if p.isOrigin {
		p.sum = ring.Mod(p.sum+value, p.n)
		if p.received < p.n {
			ctx.Send(value)
			return
		}
		p.finish(ctx, value)
		return
	}
	ctx.Send(p.buffer)
	p.buffer = value
	p.sum = ring.Mod(p.sum+value, p.n)
	if p.received == p.n {
		p.finish(ctx, value)
	}
}

func (p *participant) finish(ctx *sim.Context, last int64) {
	if last != p.secret {
		ctx.Abort()
		return
	}
	ctx.Terminate(p.winner())
}

// winner maps the common sum to a ring position, offset by the origin so
// that every logical index is equally likely regardless of where the
// minimal id landed.
func (p *participant) winner() int64 {
	return int64((p.originPos-1+int(ring.Mod(p.sum, p.n)))%p.n) + 1
}

// PhaseShift adapts an election-phase strategy (e.g. a rushing adversary)
// to the combined protocol: it participates honestly in the wake-up with
// the given id, then delegates every later message to the inner strategy.
// The inner strategy must not send during Init (all of the paper's ring
// adversaries satisfy this).
type PhaseShift struct {
	N     int
	ID    int64
	Inner sim.Strategy

	seen int
}

var _ sim.Strategy = (*PhaseShift)(nil)

// Init sends the id and initializes the inner strategy.
func (p *PhaseShift) Init(ctx *sim.Context) {
	ctx.Send(p.ID)
	p.Inner.Init(ctx)
}

// Receive forwards wake-up ids honestly, then delegates.
func (p *PhaseShift) Receive(ctx *sim.Context, from sim.ProcID, value int64) {
	if p.seen < p.N {
		p.seen++
		if value != p.ID {
			ctx.Send(value)
		}
		return
	}
	p.Inner.Receive(ctx, from, value)
}
