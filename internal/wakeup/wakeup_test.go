package wakeup

import (
	"testing"

	"repro/internal/ring"
	"repro/internal/sim"
)

// counter tracks per-processor sends.
type counter struct{ sent []int }

func (c *counter) OnSend(from sim.ProcID, _ int, _ sim.ProcID, _ int64) { c.sent[from]++ }
func (c *counter) OnDeliver(sim.ProcID, int, sim.ProcID, int64)         {}
func (c *counter) OnTerminate(sim.ProcID, int64, bool)                  {}

func TestHonestRandomIDsSucceed(t *testing.T) {
	for _, n := range []int{2, 3, 9, 33} {
		for seed := int64(0); seed < 5; seed++ {
			res, err := ring.Run(ring.Spec{N: n, Protocol: New(), Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed {
				t.Fatalf("n=%d seed=%d: failed: %v", n, seed, res.Reason)
			}
			if res.Output < 1 || res.Output > int64(n) {
				t.Fatalf("winner %d out of range", res.Output)
			}
		}
	}
}

func TestMessageCounts(t *testing.T) {
	const n = 11
	c := &counter{sent: make([]int, n+1)}
	res, err := ring.Run(ring.Spec{N: n, Protocol: New(), Seed: 2, Tracer: c})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("failed: %v", res.Reason)
	}
	for i := 1; i <= n; i++ {
		if c.sent[i] != 2*n {
			t.Errorf("processor %d sent %d messages, want 2n=%d (n wake-up + n election)",
				i, c.sent[i], 2*n)
		}
	}
}

func TestPinnedIDsSelectMinAsOrigin(t *testing.T) {
	// With ids pinned so the minimum sits at position 4, the election is
	// still valid and uniform-ish; the origin role is internal, but the
	// run must succeed from any origin position.
	const n = 9
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(100 + i)
	}
	ids[3] = 1 // position 4 holds the minimal id
	for seed := int64(0); seed < 10; seed++ {
		res, err := ring.Run(ring.Spec{N: n, Protocol: NewWithIDs(ids), Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed {
			t.Fatalf("seed=%d: failed: %v", seed, res.Reason)
		}
	}
}

func TestUniformityWithRotatingOrigin(t *testing.T) {
	// Random ids move the origin around; the winner must stay uniform
	// over ring positions regardless.
	const (
		n      = 8
		trials = 4000
	)
	dist, err := ring.Trials(ring.Spec{N: n, Protocol: New(), Seed: 77}, trials)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Failures() != 0 {
		t.Fatalf("%d honest trials failed", dist.Failures())
	}
	want := float64(trials) / n
	for j := 1; j <= n; j++ {
		if got := float64(dist.Counts[j]); got < want*0.7 || got > want*1.3 {
			t.Errorf("position %d won %v times, want ≈ %v", j, got, want)
		}
	}
}

func TestIDValidation(t *testing.T) {
	if _, err := NewWithIDs([]int64{1, 2}).Strategies(3); err == nil {
		t.Error("wrong id count accepted")
	}
	if _, err := NewWithIDs([]int64{1, 1, 2}).Strategies(3); err == nil {
		t.Error("duplicate ids accepted")
	}
	if _, err := NewWithIDs([]int64{-1, 1, 2}).Strategies(3); err == nil {
		t.Error("negative id accepted")
	}
}
