// Package committee implements hierarchical committee-sharded fair leader
// election: the n participants are partitioned into g = ⌊√n⌋ contiguous
// groups of size ≈ √n, each group elects a local winner with one of the
// paper's certified-fair ring protocols (Basic-LEAD or A-LEADuni), and a
// second-level sum-circulation among the g group delegates selects the
// winning group bias-resistantly. The final leader is the winning group's
// local winner.
//
// The composition preserves exact uniformity for any partition: the
// level-2 circulation sums g independent secrets drawn uniformly from
// [0, n) and reduces modulo n, so the residue X is uniform over [0, n);
// the winning group is the one whose contiguous position interval contains
// X, chosen with probability sizeⱼ/n, and its uniform local winner then
// lands on any fixed participant with probability (sizeⱼ/n)·(1/sizeⱼ) = 1/n.
//
// The payoff is cost, not fairness: a flat ring election circulates every
// secret past every participant — Θ(n²) messages — while the composed
// election runs g + 1 rings of size ≈ √n, for Θ(n^1.5) messages total, which
// is what makes n = 10⁴–10⁵ tractable (see MessagesPerTrial). Each group is
// simulated as its own tiny network, so the per-event cost is bounded by the
// active group's size, never by n: idle groups cost zero.
//
// The composition inherits the inner protocol's resilience. With Basic-LEAD
// groups, the single delegate-rush adversary (see Election.AttackRunner)
// forces any target with probability 1, exactly as Claim B.1 breaks the flat
// protocol. With A-LEADuni groups, the same adversary only stalls its own
// group's buffered circulation — every trial fails, no bias is gained.
package committee

import (
	"fmt"

	"repro/internal/attacks"
	"repro/internal/protocols/alead"
	"repro/internal/protocols/basiclead"
	"repro/internal/ring"
	"repro/internal/sim"
)

// Inner protocol disciplines. The discipline selects both the in-group
// protocol and the level-2 circulation style: Basic-LEAD groups compose
// through an immediate-forward delegate ring (rushable, Claim B.1 style),
// A-LEADuni groups through a buffer-of-one delegate ring (rushing stalls).
const (
	// InnerBasic runs Basic-LEAD inside each group.
	InnerBasic = "basic"
	// InnerALead runs A-LEADuni inside each group.
	InnerALead = "a-lead"
)

// Seed tags deriving the per-trial sub-election seeds. Every sub-network of
// a composed trial draws an independently mixed seed from the trial seed
// alone, so trials shard over the fleet exactly like flat batches and a
// recorded committee run is reproducible from (scenario, seed, trial index).
const (
	seedTagGroup  uint64 = 0x600D
	seedTagLevel2 uint64 = 0x1EAD
)

// GroupSeed derives the seed of group j's in-group election for one trial.
func GroupSeed(trialSeed int64, j int) int64 {
	return int64(sim.Mix64(uint64(trialSeed), uint64(j)+seedTagGroup))
}

// Level2Seed derives the seed of the delegate circulation for one trial.
func Level2Seed(trialSeed int64) int64 {
	return int64(sim.Mix64(uint64(trialSeed), seedTagLevel2))
}

// Election is one committee-sharded election configuration: the partition of
// [1..n] into contiguous √n-sized groups and the inner protocol discipline.
// An Election is immutable and safe for concurrent use; per-worker execution
// state lives in Runners.
type Election struct {
	n     int
	inner string
	proto ring.Protocol

	g      int   // number of groups, ⌊√n⌋
	sizes  []int // sizes[j] is group j's size, j in [0, g)
	starts []int // starts[j] participants precede group j; group j covers
	// global positions [starts[j]+1, starts[j]+sizes[j]]
}

// New builds the committee election over n participants with the given inner
// discipline (InnerBasic or InnerALead). It needs n ≥ 4 so that both levels
// are genuine rings: g = ⌊√n⌋ ≥ 2 groups of ≥ 2 members each.
func New(n int, inner string) (*Election, error) {
	if n < 4 {
		return nil, fmt.Errorf("committee: need n ≥ 4 for √n-sized groups, got %d", n)
	}
	var proto ring.Protocol
	switch inner {
	case InnerBasic:
		proto = basiclead.New()
	case InnerALead:
		proto = alead.New()
	default:
		return nil, fmt.Errorf("committee: unknown inner discipline %q (want %q or %q)",
			inner, InnerBasic, InnerALead)
	}
	g := isqrt(n)
	base, rem := n/g, n%g
	e := &Election{n: n, inner: inner, proto: proto, g: g,
		sizes: make([]int, g), starts: make([]int, g)}
	pos := 0
	for j := 0; j < g; j++ {
		size := base
		if j < rem {
			size++
		}
		e.sizes[j], e.starts[j] = size, pos
		pos += size
	}
	return e, nil
}

// isqrt returns ⌊√n⌋ exactly.
func isqrt(n int) int {
	g := 1
	for (g+1)*(g+1) <= n {
		g++
	}
	return g
}

// Name identifies the composed protocol in reports.
func (e *Election) Name() string {
	if e.inner == InnerALead {
		return "Committee(A-LEADuni)"
	}
	return "Committee(Basic-LEAD)"
}

// N returns the number of participants.
func (e *Election) N() int { return e.n }

// Groups returns the number of groups g = ⌊√n⌋.
func (e *Election) Groups() int { return e.g }

// GroupSizes returns a copy of the per-group sizes.
func (e *Election) GroupSizes() []int {
	return append([]int(nil), e.sizes...)
}

// GroupOf returns the index of the group containing global position pos
// (1-based). It panics on positions outside [1, n].
func (e *Election) GroupOf(pos int64) int {
	if pos < 1 || pos > int64(e.n) {
		panic(fmt.Sprintf("committee: position %d outside [1,%d]", pos, e.n))
	}
	// The first n%g groups have size base+1 and come first, so the group
	// index is a two-piece division — no search needed.
	base, rem := e.n/e.g, e.n%e.g
	p := int(pos) - 1
	if p < rem*(base+1) {
		return p / (base + 1)
	}
	return rem + (p-rem*(base+1))/base
}

// MessagesPerTrial returns the delivered-message count of one successful
// composed trial: Σⱼ sizeⱼ² for the in-group circulations, g² for the
// delegate circulation, and g + n for the winner announcements (each
// delegate reports its group winner into the delegate ring, and the final
// leader is broadcast once around the full ring). The flat protocols cost n²
// on the same accounting, so the composed/flat ratio is ≈ 2/√n.
func (e *Election) MessagesPerTrial() int {
	total := 0
	for _, s := range e.sizes {
		total += s * s
	}
	return total + e.g*e.g + e.g + e.n
}

// Runner returns a fresh honest-execution runner. Runners are single-
// goroutine workspaces: the trial engine builds one per work-claim chunk.
func (e *Election) Runner() *Runner {
	r, err := e.runner(0)
	if err != nil {
		// Honest runners cannot fail construction: the protocols accept any
		// n ≥ 2 and New validated the partition.
		panic("committee: " + err.Error())
	}
	return r
}

// AttackRunner returns a runner in which the delegate of the group
// containing target deviates at both levels to force target's election: it
// runs the Claim B.1 withhold-and-cancel attack inside its own group
// (steering the group winner onto target) and the analogous rush on the
// delegate circulation (steering the winning-group residue onto target's
// interval). Against InnerBasic the coalition of one succeeds with
// probability 1; against InnerALead both circulations are buffered, the
// withheld messages never release, and every trial stalls.
func (e *Election) AttackRunner(target int64) (*Runner, error) {
	if target < 1 || target > int64(e.n) {
		return nil, fmt.Errorf("committee: target %d outside [1,%d]", target, e.n)
	}
	return e.runner(target)
}

// runner builds the shared runner state; target 0 means honest.
func (e *Election) runner(target int64) (*Runner, error) {
	base, rem := e.n/e.g, e.n%e.g
	r := &Runner{
		e:          e,
		arenaSmall: sim.NewArena(),
		arenaL2:    sim.NewArena(),
		winners:    make([]int64, e.g),
		target:     target,
	}
	var err error
	if r.small, err = e.proto.Strategies(base); err != nil {
		return nil, fmt.Errorf("committee: inner strategies: %w", err)
	}
	if rem > 0 {
		r.arenaBig = sim.NewArena()
		if r.big, err = e.proto.Strategies(base + 1); err != nil {
			return nil, fmt.Errorf("committee: inner strategies: %w", err)
		}
	}
	r.l2 = e.level2Strategies()
	if target != 0 {
		r.atkGroup = e.GroupOf(target)
		r.atkLocal = target - int64(e.starts[r.atkGroup])
		r.atkVec = make([]sim.Strategy, e.sizes[r.atkGroup])
		// The level-2 deviation is batch-safe (Init truncates its receive
		// log), so one overlaid delegate vector serves every trial.
		r.l2Atk = append([]sim.Strategy(nil), r.l2...)
		r.l2Atk[r.atkGroup] = &sumRush{ring: e.g, valRange: e.n, target: target - 1}
	}
	return r, nil
}

// level2Strategies builds the honest delegate-circulation vector: a ring of
// g processors summing secrets drawn from [0, n) — immediate-forward under
// InnerBasic, buffer-of-one under InnerALead, mirroring the inner
// discipline's flow control so the composed protocol rushes (or resists)
// exactly as its components do.
func (e *Election) level2Strategies() []sim.Strategy {
	vec := make([]sim.Strategy, e.g)
	if e.inner == InnerALead {
		vec[0] = &sumOrigin{ring: e.g, valRange: e.n}
		for i := 1; i < e.g; i++ {
			vec[i] = &sumBuffered{ring: e.g, valRange: e.n}
		}
		return vec
	}
	for i := range vec {
		vec[i] = &sumForward{ring: e.g, valRange: e.n}
	}
	return vec
}

// Runner executes composed trials on private recycled arenas: one per group
// size (the partition has at most two) and one for the delegate ring, so a
// chunk of trials rebuilds no topology and keeps every sub-network's working
// set at O(√n). It belongs to one goroutine; the engine builds one per
// work-claim chunk. The honest in-group strategy vectors are shared by all
// groups of a size — both inner protocols are batch-safe, so Init fully
// re-establishes state between group runs.
type Runner struct {
	e          *Election
	arenaBig   *sim.Arena // groups of size base+1 (nil when n ≡ 0 mod g)
	arenaSmall *sim.Arena // groups of size base
	arenaL2    *sim.Arena // the delegate ring
	big, small []sim.Strategy
	l2         []sim.Strategy
	winners    []int64

	// Attack state; target 0 means honest.
	target   int64
	atkGroup int
	atkLocal int64
	atkVec   []sim.Strategy // scratch: attacked group's overlaid vector
	l2Atk    []sim.Strategy // delegate vector with the sumRush overlay
}

// Winners returns the per-group global winner positions of the last
// successful Run, indexed by group. The slice aliases runner scratch and is
// invalidated by the next Run.
func (r *Runner) Winners() []int64 { return r.winners }

// Run executes one composed trial: the g in-group elections in group order,
// then the delegate circulation, composing the sub-results into one
// sim.Result. Sub-elections fail fast — the first failing group's reason
// becomes the trial's reason, with message counters covering the work
// actually done. The announcement traffic of a successful trial (g delegate
// reports plus the ring-wide broadcast of the final leader) carries no
// election-relevant choices, so it is accounted analytically rather than
// simulated. The returned Result has nil Outputs/Statuses: per-processor
// state of a composed trial lives in the sub-networks.
func (r *Runner) Run(trialSeed int64) (sim.Result, error) {
	e := r.e
	var agg sim.Result
	for j := 0; j < e.g; j++ {
		size := e.sizes[j]
		arena, vec := r.arenaSmall, r.small
		if size > e.n/e.g {
			arena, vec = r.arenaBig, r.big
		}
		seed := GroupSeed(trialSeed, j)
		if r.target != 0 && j == r.atkGroup {
			// The in-group deviation is planned per trial (the adversary's
			// receive log is per-execution state) and overlaid on runner
			// scratch, leaving the shared honest vector untouched.
			dev, err := attacks.BasicSingle{Position: 1}.Plan(size, r.atkLocal, seed)
			if err != nil {
				return sim.Result{}, fmt.Errorf("committee: group %d attack: %w", j+1, err)
			}
			copy(r.atkVec, vec)
			for p, s := range dev.Strategies {
				r.atkVec[p-1] = s
			}
			vec = r.atkVec
		}
		res, err := arena.Run(sim.Config{
			Strategies: vec,
			Edges:      arena.RingEdges(size),
			Seed:       seed,
		})
		if err != nil {
			return sim.Result{}, fmt.Errorf("committee: group %d: %w", j+1, err)
		}
		agg.Delivered += res.Delivered
		agg.Dropped += res.Dropped
		agg.Steps += res.Steps
		if res.Failed {
			agg.Failed, agg.Reason = true, res.Reason
			return agg, nil
		}
		if res.Output < 1 || res.Output > int64(size) {
			agg.Failed, agg.Reason = true, sim.FailMismatch
			return agg, nil
		}
		r.winners[j] = int64(e.starts[j]) + res.Output
	}
	l2 := r.l2
	if r.target != 0 {
		l2 = r.l2Atk
	}
	res, err := r.arenaL2.Run(sim.Config{
		Strategies: l2,
		Edges:      r.arenaL2.RingEdges(e.g),
		Seed:       Level2Seed(trialSeed),
	})
	if err != nil {
		return sim.Result{}, fmt.Errorf("committee: delegate ring: %w", err)
	}
	agg.Delivered += res.Delivered
	agg.Dropped += res.Dropped
	agg.Steps += res.Steps
	if res.Failed {
		agg.Failed, agg.Reason = true, res.Reason
		return agg, nil
	}
	if res.Output < 0 || res.Output >= int64(e.n) {
		agg.Failed, agg.Reason = true, sim.FailMismatch
		return agg, nil
	}
	agg.Output = r.winners[e.GroupOf(res.Output+1)]
	agg.Delivered += e.g + e.n
	return agg, nil
}
