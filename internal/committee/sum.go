package committee

import (
	"repro/internal/ring"
	"repro/internal/sim"
)

// The level-2 strategies: a ring of g delegates circulating secrets drawn
// uniformly from [0, valRange) and terminating with the common residue
// X = Σ secrets mod valRange — the winning-group selector, not a leader
// index, so the output range is the full participant count rather than the
// delegate ring's size. Flow control mirrors the inner discipline:
// sumForward is Basic-LEAD's immediate forwarding, sumOrigin/sumBuffered are
// A-LEADuni's pipe-and-buffer pair. All three are fully re-initialized by
// Init, so one vector serves every trial of an engine chunk.

// sumForward is one delegate of the immediate-forward circulation: send the
// secret on wake-up, forward the first ring−1 receives, consume the last for
// validation.
type sumForward struct {
	ring     int
	valRange int
	secret   int64
	sum      int64
	received int
}

var _ sim.Strategy = (*sumForward)(nil)

func (p *sumForward) Init(ctx *sim.Context) {
	p.sum, p.received = 0, 0
	p.secret = ctx.Rand().Int63n(int64(p.valRange))
	ctx.Send(p.secret)
}

func (p *sumForward) Receive(ctx *sim.Context, _ sim.ProcID, value int64) {
	value = ring.Mod(value, p.valRange)
	p.received++
	p.sum = ring.Mod(p.sum+value, p.valRange)
	if p.received < p.ring {
		ctx.Send(value)
		return
	}
	if value != p.secret {
		ctx.Abort()
		return
	}
	ctx.Terminate(p.sum)
}

// sumOrigin is delegate 1 of the buffered circulation: a pipe that sends its
// secret spontaneously and forwards without delay, exactly A-LEADuni's
// origin role.
type sumOrigin struct {
	ring     int
	valRange int
	secret   int64
	sum      int64
	received int
}

var _ sim.Strategy = (*sumOrigin)(nil)

func (o *sumOrigin) Init(ctx *sim.Context) {
	o.sum, o.received = 0, 0
	o.secret = ctx.Rand().Int63n(int64(o.valRange))
	ctx.Send(o.secret)
}

func (o *sumOrigin) Receive(ctx *sim.Context, _ sim.ProcID, value int64) {
	value = ring.Mod(value, o.valRange)
	o.received++
	// value is reduced, so the raw sum stays ≤ g·n and one reduction at
	// termination replaces one per message.
	o.sum += value
	if o.received < o.ring {
		ctx.Send(value)
		return
	}
	if value != o.secret {
		ctx.Abort()
		return
	}
	ctx.Terminate(ring.Mod(o.sum, o.valRange))
}

// sumBuffered is a non-origin delegate of the buffered circulation: a buffer
// of size one initially holding its own secret, so its first outgoing
// message commits it before it has learned anything — the property that
// makes the buffered composition rush-resistant.
type sumBuffered struct {
	ring     int
	valRange int
	secret   int64
	buffer   int64
	sum      int64
	received int
}

var _ sim.Strategy = (*sumBuffered)(nil)

func (p *sumBuffered) Init(ctx *sim.Context) {
	p.sum, p.received = 0, 0
	p.secret = ctx.Rand().Int63n(int64(p.valRange))
	p.buffer = p.secret
}

func (p *sumBuffered) Receive(ctx *sim.Context, _ sim.ProcID, value int64) {
	value = ring.Mod(value, p.valRange)
	ctx.Send(p.buffer)
	p.received++
	p.buffer = value
	p.sum += value // reduced once at termination; see sumOrigin
	if p.received < p.ring {
		return
	}
	if value != p.secret {
		ctx.Abort()
		return
	}
	ctx.Terminate(ring.Mod(p.sum, p.valRange))
}

// sumRush is the adversarial delegate: the Claim B.1 withhold-and-cancel
// move lifted to the delegate circulation. It stays silent until it has
// absorbed the other ring−1 secrets, then injects the value steering the
// residue onto target and replays what it saw, so every honest delegate
// completes its receives with its own secret last and validates. Against the
// immediate-forward circulation this forces X = target with probability 1;
// against the buffered circulation the withheld messages never release and
// the ring stalls. Init truncates the receive log, so the strategy is safe
// to reuse across batched trials.
type sumRush struct {
	ring     int
	valRange int
	target   int64 // the residue to force, in [0, valRange)
	received []int64
}

var _ sim.Strategy = (*sumRush)(nil)

func (a *sumRush) Init(*sim.Context) { a.received = a.received[:0] }

func (a *sumRush) Receive(ctx *sim.Context, _ sim.ProcID, value int64) {
	value = ring.Mod(value, a.valRange)
	a.received = append(a.received, value)
	if len(a.received) < a.ring-1 {
		return
	}
	var sum int64
	for _, v := range a.received {
		sum = ring.Mod(sum+v, a.valRange)
	}
	ctx.Send(ring.Mod(a.target-sum, a.valRange))
	for _, v := range a.received {
		ctx.Send(v)
	}
	ctx.Terminate(a.target)
}
