package committee

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

// TestPartition pins the partition invariants: ⌊√n⌋ contiguous groups whose
// sizes differ by at most one, covering [1..n] in order, with GroupOf
// agreeing with the interval bounds at every position.
func TestPartition(t *testing.T) {
	for _, n := range []int{4, 5, 6, 8, 17, 32, 100, 256, 1000, 12345, 50000} {
		e, err := New(n, InnerBasic)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		g := e.Groups()
		if g*g > n || (g+1)*(g+1) <= n {
			t.Fatalf("n=%d: g=%d is not ⌊√n⌋", n, g)
		}
		sizes := e.GroupSizes()
		if len(sizes) != g {
			t.Fatalf("n=%d: %d sizes for %d groups", n, len(sizes), g)
		}
		total, min, max := 0, n, 0
		for _, s := range sizes {
			total += s
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if total != n {
			t.Fatalf("n=%d: sizes sum to %d", n, total)
		}
		if max-min > 1 || min < 2 {
			t.Fatalf("n=%d: unbalanced sizes min=%d max=%d", n, min, max)
		}
		pos := int64(1)
		for j, s := range sizes {
			for i := 0; i < s; i++ {
				if got := e.GroupOf(pos); got != j {
					t.Fatalf("n=%d: GroupOf(%d)=%d, want %d", n, pos, got, j)
				}
				pos++
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(3, InnerBasic); err == nil {
		t.Fatal("n=3 accepted")
	}
	if _, err := New(16, "phase"); err == nil {
		t.Fatal("unknown inner discipline accepted")
	}
	e, err := New(16, InnerALead)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []int64{0, -1, 17} {
		if _, err := e.AttackRunner(target); err == nil {
			t.Fatalf("target %d accepted", target)
		}
	}
}

// TestCompositionUniform is the composition property test: with uniform
// in-group winners and a uniform winning-group residue, the composed leader
// must be uniform over [1..n]. Both layers are checked on the same trials —
// every group's local winner within its Wilson interval around 1/size, and
// every participant's composed win rate within its Wilson interval around
// 1/n. The run is deterministic (fixed seed), so the bounds are exact
// assertions, not flaky statistics; z=4.2 keeps the joint check
// Bonferroni-safe across the ≈ n + n positions tested.
func TestCompositionUniform(t *testing.T) {
	for _, inner := range []string{InnerBasic, InnerALead} {
		for _, n := range []int{8, 20} {
			t.Run(fmt.Sprintf("%s/n=%d", inner, n), func(t *testing.T) {
				e, err := New(n, inner)
				if err != nil {
					t.Fatal(err)
				}
				trials := 4000
				if testing.Short() {
					trials = 1500
				}
				r := e.Runner()
				leaderWins := make([]int, n+1)
				groupWins := make(map[int64]int, n)
				for trial := 0; trial < trials; trial++ {
					ts := int64(sim.Mix64(20180516, uint64(trial)))
					res, err := r.Run(ts)
					if err != nil {
						t.Fatal(err)
					}
					if res.Failed {
						t.Fatalf("trial %d failed: %v", trial, res.Reason)
					}
					leaderWins[res.Output]++
					for _, w := range r.Winners() {
						groupWins[w]++
					}
				}
				const z = 4.2
				sizes := e.GroupSizes()
				pos := int64(1)
				for j, size := range sizes {
					for i := 0; i < size; i++ {
						lo, hi := stats.WilsonInterval(groupWins[pos], trials, z)
						if p := 1 / float64(size); p < lo || p > hi {
							t.Errorf("group %d winner %d: rate %d/%d, Wilson [%f,%f] misses 1/%d",
								j, pos, groupWins[pos], trials, lo, hi, size)
						}
						pos++
					}
				}
				for m := 1; m <= n; m++ {
					lo, hi := stats.WilsonInterval(leaderWins[m], trials, z)
					if p := 1 / float64(n); p < lo || p > hi {
						t.Errorf("leader %d: rate %d/%d, Wilson [%f,%f] misses 1/%d",
							m, leaderWins[m], trials, lo, hi, n)
					}
				}
			})
		}
	}
}

// TestAttackForcesBasic pins the inherited Claim B.1 vulnerability: with
// Basic-LEAD groups, the single delegate-rush adversary forces any target
// with probability 1.
func TestAttackForcesBasic(t *testing.T) {
	for _, n := range []int{4, 9, 64} {
		e, err := New(n, InnerBasic)
		if err != nil {
			t.Fatal(err)
		}
		for _, target := range []int64{1, int64(n/2 + 1), int64(n)} {
			r, err := e.AttackRunner(target)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 25; trial++ {
				res, err := r.Run(int64(sim.Mix64(7, uint64(trial))))
				if err != nil {
					t.Fatal(err)
				}
				if res.Failed || res.Output != target {
					t.Fatalf("n=%d target=%d trial %d: failed=%v output=%d",
						n, target, trial, res.Failed, res.Output)
				}
			}
		}
	}
}

// TestAttackStallsALead pins the composed resilience: with A-LEADuni groups
// the same delegate-rush adversary gains nothing — its withheld messages
// stall the buffered circulation and every trial fails.
func TestAttackStallsALead(t *testing.T) {
	e, err := New(64, InnerALead)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.AttackRunner(5)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		res, err := r.Run(int64(sim.Mix64(7, uint64(trial))))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Failed || res.Reason != sim.FailStall {
			t.Fatalf("trial %d: failed=%v reason=%v, want stall", trial, res.Failed, res.Reason)
		}
	}
}

// TestRunnerDeterminism pins the reproducibility contract: the same trial
// seed yields identical results on a fresh runner and on a recycled one, so
// committee batches shard over the fleet exactly like flat batches.
func TestRunnerDeterminism(t *testing.T) {
	e, err := New(50, InnerALead)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int64{1, 42, -9, 20180516}
	first := make([]sim.Result, len(seeds))
	r := e.Runner()
	for i, s := range seeds {
		if first[i], err = r.Run(s); err != nil {
			t.Fatal(err)
		}
	}
	// Replay on the same (recycled) runner, then on a fresh one.
	for name, rr := range map[string]*Runner{"recycled": r, "fresh": e.Runner()} {
		for i, s := range seeds {
			res, err := rr.Run(s)
			if err != nil {
				t.Fatal(err)
			}
			want := first[i]
			if res.Failed != want.Failed || res.Reason != want.Reason ||
				res.Output != want.Output || res.Delivered != want.Delivered ||
				res.Dropped != want.Dropped || res.Steps != want.Steps {
				t.Fatalf("%s runner diverged at seed %d: %+v vs %+v", name, s, res, want)
			}
		}
	}
}

// TestMessagesPerTrial checks the analytic per-trial cost against the
// counters of an actual successful run, and the Θ(n^1.5) scaling claim.
func TestMessagesPerTrial(t *testing.T) {
	for _, inner := range []string{InnerBasic, InnerALead} {
		e, err := New(30, inner)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Runner().Run(11)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed {
			t.Fatalf("%s: trial failed: %v", inner, res.Reason)
		}
		if res.Delivered != e.MessagesPerTrial() {
			t.Fatalf("%s: delivered %d, analytic %d", inner, res.Delivered, e.MessagesPerTrial())
		}
	}
	big, err := New(10000, InnerALead)
	if err != nil {
		t.Fatal(err)
	}
	if flat := 10000 * 10000; big.MessagesPerTrial()*20 > flat {
		t.Fatalf("composed cost %d is not ≪ flat %d", big.MessagesPerTrial(), flat)
	}
}
