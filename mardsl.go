package repro

import (
	"repro/internal/mardsl"
	"repro/internal/mardsl/marlib"
)

// The MAR protocol/adversary DSL: compact text specs for per-processor
// state machines that compile onto the same arena hot path as the native
// implementations. Importing this package registers the embedded spec'd
// twins (mar-basic-lead, mar-basic-single) in the scenario catalog; see
// ARCHITECTURE.md for the spec grammar.

// RegisterSpec compiles one MAR spec — protocol or adversary — and
// registers it in the scenario catalog, returning the names of the
// scenarios it created: "ring/<name>/{fifo,lifo,random}" for a protocol,
// "ring/<use>/attack=<name>" (plus the deviation family "<name>") for an
// adversary. Registered specs ride the normal catalog plumbing: Scenarios,
// RunScenario, Certify, and the service daemon serve them unchanged. Name
// collisions are rejected before anything is registered.
func RegisterSpec(src string) ([]string, error) {
	return marlib.Register(src)
}

// GenerateAdversarySpec emits a grammar-random MAR adversary spec against
// the native Basic-LEAD protocol, fully determined by the seed. Every
// generated spec registers cleanly through RegisterSpec; distinct seeds
// yield distinct spec names, so fleets of generated adversaries can share
// one catalog.
func GenerateAdversarySpec(seed int64) string {
	return mardsl.GenerateAdversary(seed)
}

// GenerateProtocolSpec emits a grammar-random MAR protocol spec —
// Basic-LEAD-shaped with drawn arithmetic variations — fully determined by
// the seed. Every generated spec registers cleanly through RegisterSpec.
func GenerateProtocolSpec(seed int64) string {
	return mardsl.GenerateProtocol(seed)
}

// EmbeddedSpecSources returns the bundled MAR spec texts (the compiled
// twins of Basic-LEAD and the Claim B.1 attack) in registration order.
// They register automatically on import; the sources are exported as
// reference specs and fuzz corpus.
func EmbeddedSpecSources() []string {
	return marlib.EmbeddedSources()
}
