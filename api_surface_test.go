package repro

import (
	"context"
	"math/rand"
	"testing"
)

// TestImpossibilityAPISurface pins the exported Section 7 / Appendix F
// wrappers: the XOR protocol's second-mover dictatorship, graph
// constructors, and the simulated-tree decomposition round-trip.
func TestImpossibilityAPISurface(t *testing.T) {
	v := ClassifyTwoParty(XORCoinToss())
	if p, ok := v.Dictator(); !ok || p != PartyB {
		t.Fatalf("XOR exchange dictator = %v ok %v, want second mover", p, ok)
	}

	ringG, err := RingGraph(6)
	if err != nil {
		t.Fatal(err)
	}
	part, err := HalfSplit(ringG)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifySimulatedTree(ringG, part, 3); err != nil {
		t.Fatalf("half split of C6 is not a 3-simulated tree: %v", err)
	}
	k, _, err := MinSimulatedTreeK(ringG)
	if err != nil || k != 3 {
		t.Fatalf("MinSimulatedTreeK(C6) = %d err %v, want 3", k, err)
	}

	if _, err := GridGraph(2, 3); err != nil {
		t.Fatal(err)
	}
	if rec := NewRecorder(4); rec == nil {
		t.Fatal("NewRecorder returned nil")
	}
}

// TestReferenceScenarioAPISurface pins the exported reference-scenario
// constructors: trees, the complete graph with Shamir sharing, and the
// synchronous lock-step model.
func TestReferenceScenarioAPISurface(t *testing.T) {
	path, err := PathGraph(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTreeElection(path, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := StarGraph(5); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCompleteElection(6, 0); err != nil {
		t.Fatal(err)
	}

	procs, err := NewSynchronousCompleteElection(5, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSynchronous(procs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed || res.Output < 1 || res.Output > 5 {
		t.Fatalf("synchronous election: failed %v output %d", res.Failed, res.Output)
	}

	rng := rand.New(rand.NewSource(7))
	shares, err := ShamirSplit(12345, 3, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	secret, err := ShamirReconstruct(shares[:3])
	if err != nil || secret != 12345 {
		t.Fatalf("Shamir round trip = %d err %v", secret, err)
	}
}

// TestConstructorAPISurface pins every exported protocol and attack
// constructor: each yields a usable, named value.
func TestConstructorAPISurface(t *testing.T) {
	for _, p := range []Protocol{
		NewBasicLead(), NewSumPhaseLead(), NewChangRoberts(), NewPeterson(),
	} {
		if p.Name() == "" {
			t.Fatal("protocol with empty name")
		}
	}
	phase := NewPhaseAsyncLeadWithParams(PhaseParams{L: 4, M: 32, FuncSeed: 1})
	if phase.Name() == "" {
		t.Fatal("phase protocol with empty name")
	}
	for _, a := range []Attack{
		NewBasicSingleAttack(), NewCubicAttack(0), NewRandomizedAttack(),
		NewHalfRingAttack(), NewSumPhaseAttack(),
		NewPhaseRushingAttack(phase, 2), NewPhaseChaseAttack(phase, 2),
	} {
		if a.Name() == "" {
			t.Fatal("attack with empty name")
		}
	}

	// The spec-struct entry point is the attack path.
	spec := AttackSpec{N: 8, Protocol: NewBasicLead(), Attack: NewBasicSingleAttack(), Target: 1, Seed: 3}
	dist, err := RunAttackTrials(context.Background(), spec, 16, TrialOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if dist.Trials != 16 {
		t.Fatalf("attack batch ran %d trials, want 16", dist.Trials)
	}

	// The deprecated positional wrappers stay thin: bit-identical to the
	// spec-struct entry point.
	legacy, err := AttackTrialsOpts(context.Background(), 8, NewBasicLead(),
		NewBasicSingleAttack(), 1, 3, 16, TrialOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Trials != dist.Trials || legacy.Failures() != dist.Failures() {
		t.Fatalf("deprecated wrapper diverged: %d/%d trials, %d/%d failures",
			legacy.Trials, dist.Trials, legacy.Failures(), dist.Failures())
	}
	for i := range dist.Counts {
		if legacy.Counts[i] != dist.Counts[i] {
			t.Fatalf("deprecated wrapper count[%d] = %d, want %d", i, legacy.Counts[i], dist.Counts[i])
		}
	}
}

// TestCertifyAllCoversCatalog pins the catalog-wide certification entry
// point at a tiny budget: one certificate per registered scenario.
func TestCertifyAllCoversCatalog(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps the whole catalog")
	}
	certs, err := CertifyAll(context.Background(), 11, CertifyOptions{
		Trials: 8, MaxK: 1, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(certs) != len(Scenarios()) {
		t.Fatalf("CertifyAll returned %d certificates for %d scenarios", len(certs), len(Scenarios()))
	}
}
