package repro

// Allocation-regression tests for the trial hot path. Since the arena PR,
// one trial on a recycled per-worker arena allocates only the protocol's own
// strategy vector (n strategy objects plus the slice, plus a constant number
// of protocol-internal objects); the simulation core — network, links,
// queues, PRNGs, result buffers — is recycled and contributes zero. These
// tests pin that ceiling with testing.AllocsPerRun so a regression fails CI
// instead of silently re-inflating the Monte-Carlo workloads.

import (
	"testing"

	"repro/internal/protocols/alead"
	"repro/internal/protocols/basiclead"
	"repro/internal/protocols/phaselead"
	"repro/internal/ring"
	"repro/internal/sim"
)

// trialAllocs measures steady-state allocations per arena trial of the given
// spec, varying the seed per run like a real batch does.
func trialAllocs(t *testing.T, spec ring.Spec, runs int) float64 {
	t.Helper()
	arena := sim.NewArena()
	seed := int64(0)
	trial := func() {
		spec.Seed = seed
		seed++
		if _, err := ring.RunArena(spec, arena); err != nil {
			t.Fatal(err)
		}
	}
	trial() // warm the arena: the first trial builds the network
	return testing.AllocsPerRun(runs, trial)
}

func TestArenaTrialAllocBudget(t *testing.T) {
	cases := []struct {
		name   string
		spec   ring.Spec
		budget float64 // measured steady state + small headroom
	}{
		// Basic-LEAD n=8 measures 9 = n strategies + 1 slice.
		{"basic-lead/n=8", ring.Spec{N: 8, Protocol: basiclead.New()}, 12},
		// A-LEADuni n=16 measures 17 = n strategies + 1 slice.
		{"a-lead/n=16", ring.Spec{N: 16, Protocol: alead.New()}, 20},
		// PhaseAsyncLead n=16 measures 19 = n strategies + slice + the
		// shared data/vals backing array + the randfunc.Func.
		{"phase-lead/n=16", ring.Spec{N: 16, Protocol: phaselead.NewDefault()}, 22},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := trialAllocs(t, tc.spec, 100)
			if got > tc.budget {
				t.Errorf("arena trial allocates %.1f allocs/op, budget %.0f — the hot path regressed",
					got, tc.budget)
			}
		})
	}
}

// TestArenaTrialAllocsBeatFresh asserts the arena's reason to exist: a
// recycled trial must allocate well under half of what a fresh-network trial
// does (the ISSUE's ≥50% target, measured at the single-trial level).
func TestArenaTrialAllocsBeatFresh(t *testing.T) {
	spec := ring.Spec{N: 16, Protocol: alead.New()}
	seed := int64(0)
	fresh := testing.AllocsPerRun(100, func() {
		spec.Seed = seed
		seed++
		if _, err := ring.Run(spec); err != nil {
			t.Fatal(err)
		}
	})
	recycled := trialAllocs(t, spec, 100)
	if recycled > fresh/2 {
		t.Errorf("arena trial allocates %.1f allocs/op vs %.1f fresh — less than a 2× reduction", recycled, fresh)
	}
}
