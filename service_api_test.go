package repro

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"
)

// TestServicePublicAPI drives the exported service surface end to end: an
// embedded daemon via NewServiceServer, the typed client, a pooled direct
// run, and the version helper.
func TestServicePublicAPI(t *testing.T) {
	ctx := context.Background()
	srv, err := NewServiceServer(ServiceConfig{Parallel: 1, Version: "test-api"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	client := NewServiceClient(ts.URL)
	if err := client.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}
	descs, err := client.Scenarios(ctx)
	if err != nil {
		t.Fatalf("scenarios: %v", err)
	}
	if len(descs) != len(Scenarios()) {
		t.Fatalf("service lists %d scenarios, registry has %d", len(descs), len(Scenarios()))
	}

	req := ServiceJobRequest{Scenario: "ring/basic-lead/fifo", N: 8, Trials: 80, Seed: 12}
	states, err := client.Submit(ctx, []ServiceJobRequest{req})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final, err := client.Wait(ctx, states[0].ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.Status != "done" {
		t.Fatalf("job finished %s: %s", final.Status, final.Error)
	}
	got, err := client.Job(ctx, states[0].ID)
	if err != nil {
		t.Fatalf("job: %v", err)
	}
	if string(got.Result) != string(final.Result) {
		t.Fatal("GET /jobs/{id} result differs from the streamed terminal state")
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Version != "test-api" || stats.Jobs.Submitted != 1 {
		t.Fatalf("stats = version %q, submitted %d", stats.Version, stats.Jobs.Submitted)
	}
	if ServiceBuildVersion() == "" {
		t.Fatal("empty build version")
	}
}

// TestServeLifecycle runs the one-call daemon entrypoint on an ephemeral
// port and shuts it down through its context.
func TestServeLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- Serve(ctx, ServiceConfig{Addr: "127.0.0.1:0", Parallel: 1}) }()
	// Serve owns the resolved address internally; the lifecycle is what
	// this test pins — bind, run, and exit nil on cancel.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Serve returned %v after cancel, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after context cancel")
	}
}

// TestTrialArenaPoolPublicAPI reuses one pool across public trial batches
// and checks results are unchanged.
func TestTrialArenaPoolPublicAPI(t *testing.T) {
	pool := NewTrialArenaPool()
	spec := Spec{N: 16, Protocol: NewALead(), Seed: 5}
	want, err := Trials(spec, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := TrialsOpts(context.Background(), spec, 200, TrialOptions{Arenas: pool})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pooled batch %d differs from fresh batch", i)
		}
	}
	if pool.Allocated() == 0 {
		t.Fatal("pool was never used")
	}
}
