package repro

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestRegisterSpecSurface pins the exported DSL surface: the embedded
// twins are importable sources, registration errors are clean, and a
// registered generated protocol runs through the ordinary scenario entry
// points.
func TestRegisterSpecSurface(t *testing.T) {
	if srcs := EmbeddedSpecSources(); len(srcs) != 2 {
		t.Fatalf("want 2 embedded specs, got %d", len(srcs))
	}
	for _, name := range []string{"ring/mar-basic-lead/fifo", "ring/mar-basic-lead/attack=mar-basic-single"} {
		if _, ok := FindScenario(name); !ok {
			t.Errorf("embedded spec scenario %s missing from the catalog", name)
		}
	}
	if _, err := RegisterSpec("not a spec"); err == nil {
		t.Error("malformed source registered")
	}
	names, err := RegisterSpec(GenerateProtocolSpec(77))
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunScenario(context.Background(), names[0], 5, ScenarioOpts{N: 6, Trials: 40})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trials != 40 {
		t.Fatalf("generated protocol ran %d trials, want 40", out.Trials)
	}
}

// TestGenerativeCertification is the generative fuzz-certification sweep:
// twenty grammar-generated adversary specs register through RegisterSpec
// and run through Certify without panicking, and every certificate is
// byte-identical between one and three workers. This file sorts after the
// other root test files so the generated registrations don't perturb the
// catalog-count assertions that ran before it.
func TestGenerativeCertification(t *testing.T) {
	if testing.Short() {
		t.Skip("certifies twenty generated adversaries")
	}
	ctx := context.Background()
	for seed := int64(100); seed < 120; seed++ {
		src := GenerateAdversarySpec(seed)
		names, err := RegisterSpec(src)
		if err != nil {
			t.Fatalf("seed %d: register: %v\n%s", seed, err, src)
		}
		if len(names) != 1 || !strings.HasPrefix(names[0], "ring/basic-lead/attack=gen-adv-") {
			t.Fatalf("seed %d: unexpected scenario names %v", seed, names)
		}
		opts := CertifyOptions{Trials: 80, Workers: 1}
		a, err := Certify(ctx, names[0], 9, opts)
		if err != nil {
			t.Fatalf("seed %d: certify: %v", seed, err)
		}
		switch a.Verdict {
		case VerdictFair, VerdictExploitable, VerdictInconclusive:
		default:
			t.Fatalf("seed %d: certificate carries no verdict: %+v", seed, a)
		}
		opts.Workers = 3
		b, err := Certify(ctx, names[0], 9, opts)
		if err != nil {
			t.Fatalf("seed %d: certify workers=3: %v", seed, err)
		}
		aj, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		bj, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if string(aj) != string(bj) {
			t.Errorf("seed %d: certificate differs between worker counts\n1: %s\n3: %s", seed, aj, bj)
		}
	}
}
