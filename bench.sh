#!/usr/bin/env sh
# bench.sh — run the experiment benchmarks (E1..E15) plus the trial-engine
# sequential/parallel pair and the arena fresh/recycled pair, and record the
# results, so the repository's performance trajectory is measured, not
# remembered.
#
# Usage: [BENCH_TAG=label] ./bench.sh [extra go-test-bench args]
#
# Results land in BENCH_<date>[_<label>].json (the `go test -json` event
# stream, which preserves every benchmark line and metric for later diffing
# with benchstat) next to a plain-text twin BENCH_<date>[_<label>].txt for
# human eyes. Set BENCH_TAG to keep several recordings from the same day,
# e.g. a before/after pair around an optimization.
set -eu

cd "$(dirname "$0")"

date="$(date -u +%Y-%m-%d)"
stem="BENCH_${date}${BENCH_TAG:+_${BENCH_TAG}}"
json_out="${stem}.json"
txt_out="${stem}.txt"

go test -run '^$' -bench 'E[0-9]+|BenchmarkTrials(Sequential|Parallel)|BenchmarkArenaTrial|BenchmarkCommittee(10|50)k' -benchmem -json "$@" . >"$json_out"

# The JSON stream is the artifact; derive the human-readable summary from it
# rather than running the suite twice.
grep -o '"Output":"[^"]*"' "$json_out" |
	sed -e 's/^"Output":"//' -e 's/"$//' -e 's/\\t/\t/g' -e 's/\\n$//' >"$txt_out"

echo "benchmarks recorded to $json_out (summary: $txt_out)"
