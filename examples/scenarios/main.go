// Scenarios: the paper's resilience landscape (Section 1.1), end to end.
//
// How many rational colluders can fair leader election survive? It depends
// entirely on what the network lets them see before they commit:
//
//	synchronous (any topology)        n−1   nothing to rush
//	async complete graph (Shamir)     ⌈n/2⌉−1   shares hide secrets
//	async unidirectional ring         Θ(√n)   this paper's battleground
//	any topology                      < ⌈n/2⌉   Theorem 7.2 ceiling
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const n = 12
	fmt.Printf("Fair leader election, n = %d processors, one scenario at a time.\n\n", n)

	// 1. Synchronous complete graph, n−1 colluders.
	wins := map[int64]int{}
	const trials = 300
	for seed := int64(0); seed < trials; seed++ {
		procs, err := repro.NewSynchronousCompleteElection(n, n-1, seed)
		if err != nil {
			log.Fatal(err)
		}
		res, err := repro.RunSynchronous(procs, n+4)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Failed {
			wins[res.Output]++
		}
	}
	maxWin := 0
	for _, c := range wins {
		if c > maxWin {
			maxWin = c
		}
	}
	fmt.Printf("synchronous, k = n−1 = %d colluders: max-win %.3f over %d trials (1/n = %.3f)\n",
		n-1, float64(maxWin)/trials, trials, 1.0/n)
	fmt.Println("  → simultaneity beats even a maximal coalition: their secrets commit blind.")

	// 2. Asynchronous complete graph with Shamir sharing.
	e, err := repro.NewCompleteElection(n, 0)
	if err != nil {
		log.Fatal(err)
	}
	threshold := e.Threshold()
	if _, err := e.RunAttack(threshold-1, 2, 1, nil); err != nil {
		fmt.Printf("\nasync complete, k = ⌈n/2⌉−1 = %d: %v\n", threshold-1, err)
	}
	forced := 0
	for seed := int64(0); seed < 20; seed++ {
		res, err := e.RunAttack(threshold, 2, seed, nil)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Failed && res.Output == 2 {
			forced++
		}
	}
	fmt.Printf("async complete, k = ⌈n/2⌉ = %d: forced rate %d/20\n", threshold, forced)
	fmt.Println("  → Shamir hiding is exactly tight: one more colluder and they reconstruct early.")

	// 3. The asynchronous ring: the paper's contribution.
	phase := repro.NewPhaseAsyncLead()
	const ringN = 400
	if _, err := repro.NewPhaseRushingAttack(phase, 2).Plan(ringN, 1, 0); err != nil {
		fmt.Printf("\nasync ring (n=%d), k = 2 ≤ √n/10: attack planning fails (Theorem 6.1)\n", ringN)
	}
	attack := repro.NewPhaseRushingAttack(phase, 0) // k = √n+3
	dist, err := repro.AttackTrials(ringN, phase, attack, 7, 1, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("async ring (n=%d), k = √n+3 = 23: forced rate %.2f\n", ringN, dist.WinRate(7))
	fmt.Println("  → the serial information flow of a ring caps fairness at Θ(√n) colluders.")

	// 4. The universal ceiling: trees and the half ring.
	tree, err := repro.PathGraph(9)
	if err != nil {
		log.Fatal(err)
	}
	te, err := repro.NewTreeElection(tree, 5)
	if err != nil {
		log.Fatal(err)
	}
	res, err := te.Run(repro.TreeElectionSpec{Seed: 1, AdversaryRoot: true, Target: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntree network, k = 1 (the convergecast root): forced leader %d\n", res.Output)
	fmt.Println("  → trees are 1-simulated trees: no topology escapes Theorem 7.2's ⌈n/2⌉ ceiling,")
	fmt.Println("    and on trees the ceiling collapses to a single rational agent.")
}
