// Attack gallery: every adversarial deviation from the paper, run against
// its target protocol on a small ring, with the outcome it forces.
package main

import (
	"fmt"
	"log"

	"repro"
)

type exhibit struct {
	name     string
	claim    string
	protocol repro.Protocol
	attack   repro.Attack
	n        int
	target   int64
}

func main() {
	phase := repro.NewPhaseAsyncLead()
	gallery := []exhibit{
		{
			name:     "single adversary vs Basic-LEAD",
			claim:    "Claim B.1: one rational agent controls the naive protocol",
			protocol: repro.NewBasicLead(),
			attack:   repro.NewBasicSingleAttack(),
			n:        32, target: 5,
		},
		{
			name:     "⌈√n⌉ equally spaced vs A-LEADuni",
			claim:    "Theorem 4.2: rushing breaks the buffering protocol at k=√n",
			protocol: repro.NewALead(),
			attack:   repro.NewSqrtAttack(0),
			n:        100, target: 17,
		},
		{
			name:     "cubic attack vs A-LEADuni",
			claim:    "Theorem 4.3: staggered distances push info k rounds ahead; k≈(2n)^{1/3}",
			protocol: repro.NewALead(),
			attack:   repro.NewCubicAttack(0),
			n:        512, target: 100,
		},
		{
			name:     "randomly located coalition vs A-LEADuni",
			claim:    "Theorem C.1: Θ(√(n log n)) random agents, ignorant of k and distances",
			protocol: repro.NewALead(),
			attack:   repro.NewRandomizedAttack(),
			n:        400, target: 9,
		},
		{
			name:     "half-ring coalition vs A-LEADuni",
			claim:    "Theorem 7.2 on the ring: some ⌈n/2⌉ coalition beats ANY protocol",
			protocol: repro.NewALead(),
			attack:   repro.NewHalfRingAttack(),
			n:        64, target: 2,
		},
		{
			name:     "√n+3 rushing vs PhaseAsyncLead",
			claim:    "Section 6 tightness: informed free slots steer the random function",
			protocol: phase,
			attack:   repro.NewPhaseRushingAttack(phase, 0),
			n:        400, target: 123,
		},
		{
			name:     "four colluders vs SumPhaseLead",
			claim:    "Appendix E.4: validation rounds leak partial sums without f",
			protocol: repro.NewSumPhaseLead(),
			attack:   repro.NewSumPhaseAttack(),
			n:        121, target: 60,
		},
	}

	const trials = 20
	for _, ex := range gallery {
		dist, err := repro.AttackTrials(ex.n, ex.protocol, ex.attack, ex.target, 1, trials)
		if err != nil {
			log.Fatalf("%s: %v", ex.name, err)
		}
		fmt.Printf("%-42s n=%-4d target=%-3d forced %.0f%% (%d trials)\n",
			ex.name, ex.n, ex.target, 100*dist.WinRate(ex.target), trials)
		fmt.Printf("    %s\n", ex.claim)
	}

	// The flip side: below its threshold, the strongest deviation against
	// PhaseAsyncLead cannot even be scheduled.
	if _, err := repro.NewPhaseRushingAttack(phase, 2).Plan(400, 1, 0); err != nil {
		fmt.Printf("\nPhaseAsyncLead at k=2 ≤ √n/10: %v\n", err)
		fmt.Println("    Theorem 6.1: no coalition that small can steer the outcome.")
	}
}
