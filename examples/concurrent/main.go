// Concurrent: the same protocols on a real goroutine-per-processor runtime
// with channels as FIFO links — the asynchronous model made literal. On a
// unidirectional ring every oblivious schedule is equivalent (Section 2), so
// the Go scheduler must agree with the deterministic simulator seed by seed.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	const n = 200
	proto := repro.NewPhaseAsyncLead()

	agree := 0
	var concTotal, simTotal time.Duration
	for seed := int64(0); seed < 10; seed++ {
		spec := repro.Spec{N: n, Protocol: proto, Seed: seed}

		start := time.Now()
		simRes, err := repro.Run(spec)
		if err != nil {
			log.Fatal(err)
		}
		simTotal += time.Since(start)

		start = time.Now()
		concRes, err := repro.RunConcurrent(spec, repro.ConcurrentOptions{})
		if err != nil {
			log.Fatal(err)
		}
		concTotal += time.Since(start)

		match := !simRes.Failed && !concRes.Failed && simRes.Output == concRes.Output
		if match {
			agree++
		}
		fmt.Printf("seed %d: simulator → %3d, goroutines → %3d  %s\n",
			seed, simRes.Output, concRes.Output, tick(match))
	}
	fmt.Printf("\n%d/10 outcomes identical across runtimes (schedule-independence on the ring)\n", agree)
	fmt.Printf("event-driven simulator: %v total; %d goroutines + channels: %v total\n",
		simTotal.Round(time.Millisecond), n, concTotal.Round(time.Millisecond))
}

func tick(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗"
}
