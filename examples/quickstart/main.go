// Quickstart: run one fair leader election with PhaseAsyncLead, then
// estimate the outcome distribution over many trials — the library's
// two basic entry points.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const n = 100

	// One election. Processor 1 (the origin) wakes up spontaneously; all
	// processors share secrets through the phase-validated ring and apply
	// the protocol's random function to the shared transcript.
	proto := repro.NewPhaseAsyncLead()
	res, err := repro.Run(repro.Spec{N: n, Protocol: proto, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	if res.Failed {
		log.Fatalf("election failed: %v", res.Reason)
	}
	fmt.Printf("elected leader: %d (of %d), %d messages delivered\n",
		res.Output, n, res.Delivered)

	// Many elections: the leader is uniform.
	dist, err := repro.Trials(repro.Spec{N: n, Protocol: proto, Seed: 7}, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("500 elections: %s\n", repro.Bias(dist))
	fmt.Println("ε ≈ 0 means no leader is elected more often than 1/n — a fair election.")
}
