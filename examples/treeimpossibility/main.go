// Tree impossibility: the Section 7 pipeline made concrete.
//
//  1. Lemma F.2: every two-party coin-toss protocol has a dictator or a
//     favourable value — shown on the XOR exchange.
//  2. Claim F.5: the ring decomposes into a 2-node simulated tree with
//     parts of size ⌈n/2⌉.
//  3. Theorem 7.2, realized: the coalition occupying one part (a half
//     ring) controls A-LEADuni — while one processor fewer is provably
//     powerless (Claim D.1).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Step 1: the two-party dichotomy.
	xor := repro.XORCoinToss()
	verdict := repro.ClassifyTwoParty(xor)
	dictator, _ := verdict.Dictator()
	fmt.Println("Lemma F.2 on the XOR exchange protocol:")
	fmt.Printf("  party %v assures outcome 0: %v\n", repro.PartyB, verdict.AssuresZero[repro.PartyB])
	fmt.Printf("  party %v assures outcome 1: %v\n", repro.PartyB, verdict.AssuresOne[repro.PartyB])
	fmt.Printf("  ⇒ the second mover (%v) is a dictator: fair two-party coin toss cannot be 1-resilient\n\n", dictator)

	// Step 2: the ring as a 2-node simulated tree.
	const n = 64
	g, err := repro.RingGraph(n)
	if err != nil {
		log.Fatal(err)
	}
	part, err := repro.HalfSplit(g)
	if err != nil {
		log.Fatal(err)
	}
	quotient, err := repro.VerifySimulatedTree(g, part, (n+1)/2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Claim F.5 on the %d-ring: %d parts of ≤ %d processors, quotient has %d nodes (a tree)\n\n",
		n, part.Parts, part.MaxPartSize(), quotient.N)

	// Step 3: the dictating part, executed against A-LEADuni.
	dist, err := repro.AttackTrials(n, repro.NewALead(), repro.NewHalfRingAttack(), 2, 1, 25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 7.2 realized: the ⌈n/2⌉=%d half-ring coalition forces leader 2 in %.0f%% of runs\n",
		(n+1)/2, 100*dist.WinRate(2))

	// One processor fewer: planning is refused, matching Claim D.1.
	if _, err := repro.NewHalfRingAttack().Plan(n, 2, 0); err == nil {
		// default K = ⌈n/2⌉ plans fine; ask for one fewer explicitly:
		_ = err
	}
	fmt.Printf("Claim D.1: consecutive coalitions below n/2 gain nothing — the attack refuses to plan there.\n")
}
