// Sync profile: the quantitative heart of the paper, measured.
//
// A-LEADuni only keeps processors k²-synchronized — the cubic attack drives
// the coalition's send counters Θ(k²) apart, which is exactly how it learns
// distant secrets before committing. PhaseAsyncLead's phase validation
// pins every deviation to O(k) spread, closing that channel. This example
// traces both executions and prints the spread profiles side by side as an
// ASCII chart (the repository's stand-in for the paper's "figure").
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	const n = 512
	target := int64(1)

	// Cubic attack on A-LEADuni.
	cubic := repro.NewCubicAttack(0)
	dev, err := cubic.Plan(n, target, 0)
	if err != nil {
		log.Fatal(err)
	}
	k := len(dev.Coalition)
	rec := repro.NewRecorder(n)
	res, err := repro.Run(repro.Spec{N: n, Protocol: repro.NewALead(), Deviation: dev, Seed: 3, Tracer: rec})
	if err != nil {
		log.Fatal(err)
	}
	aleadProfile := rec.Sync(dev.Coalition)
	fmt.Printf("A-LEADuni + cubic attack: n=%d k=%d forced leader=%d\n", n, k, res.Output)
	fmt.Printf("  max coalition send spread: %d (Lemma D.5 bound 2k² = %d)\n", aleadProfile.MaxGap, 2*k*k)
	chart("  spread over time", aleadProfile.Series, aleadProfile.MaxGap)

	// PhaseAsyncLead under its strongest (steering) attack.
	phase := repro.NewPhaseAsyncLead()
	phAttack := repro.NewPhaseRushingAttack(phase, 0)
	phDev, err := phAttack.Plan(n, target, 0)
	if err != nil {
		log.Fatal(err)
	}
	kp := len(phDev.Coalition)
	rec = repro.NewRecorder(n)
	res, err = repro.Run(repro.Spec{N: n, Protocol: phase, Deviation: phDev, Seed: 3, Tracer: rec})
	if err != nil {
		log.Fatal(err)
	}
	phaseProfile := rec.Sync(phDev.Coalition)
	fmt.Printf("\nPhaseAsyncLead + rushing: n=%d k=%d forced leader=%d\n", n, kp, res.Output)
	fmt.Printf("  max coalition send spread: %d (phase validation keeps it O(k), k=%d)\n",
		phaseProfile.MaxGap, kp)
	chart("  spread over time", phaseProfile.Series, aleadProfile.MaxGap)

	fmt.Printf("\nThe gap ratio %d:%d is the paper's Section 6 story: the phase mechanism removes\n",
		aleadProfile.MaxGap, phaseProfile.MaxGap)
	fmt.Println("the k²-desynchronization that the cubic attack feeds on.")
}

// chart prints a coarse ASCII profile: 60 buckets, each showing the maximal
// spread within the bucket scaled to the global maximum.
func chart(title string, series []int, scaleMax int) {
	if len(series) == 0 || scaleMax == 0 {
		return
	}
	const buckets = 60
	fmt.Println(title + ":")
	bucketMax := make([]int, buckets)
	for i, v := range series {
		b := i * buckets / len(series)
		if v > bucketMax[b] {
			bucketMax[b] = v
		}
	}
	const height = 8
	for row := height; row >= 1; row-- {
		var b strings.Builder
		threshold := scaleMax * row / height
		for _, v := range bucketMax {
			if v >= threshold && threshold > 0 {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		fmt.Printf("  %5d |%s\n", threshold, b.String())
	}
	fmt.Printf("        +%s→ time\n", strings.Repeat("-", buckets))
}
