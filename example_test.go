package repro_test

// Runnable examples for the public API, compiled and verified by go test
// and rendered on pkg.go.dev. Every example is deterministic: trial batches
// run on the parallel engine, whose results are bit-identical at any worker
// count for a fixed seed.

import (
	"context"
	"fmt"

	repro "repro"
)

// ExampleRunScenario runs one registered scenario by name, overriding its
// default size and trial count.
func ExampleRunScenario() {
	out, err := repro.RunScenario(context.Background(), "ring/a-lead/fifo", 20180516,
		repro.ScenarioOpts{N: 8, Trials: 200})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s on n=%d: %d trials, %d failures\n", out.Scenario, out.N, out.Trials, out.Failures)
	fmt.Printf("most elected leader: %d (rate %.3f)\n", out.MaxWinLeader, out.MaxWinRate)
	// Output:
	// ring/a-lead/fifo on n=8: 200 trials, 0 failures
	// most elected leader: 3 (rate 0.170)
}

// ExampleMatchScenarios selects a slice of the catalog by regular
// expression — here, every PhaseAsyncLead configuration on the ring.
func ExampleMatchScenarios() {
	scenarios, err := repro.MatchScenarios(`^ring/phase-lead/`)
	if err != nil {
		panic(err)
	}
	for _, s := range scenarios {
		fmt.Println(s.Name)
	}
	// Output:
	// ring/phase-lead/attack=phase-chase
	// ring/phase-lead/attack=phase-nosteer
	// ring/phase-lead/attack=phase-rushing
	// ring/phase-lead/attack=sum-phase
	// ring/phase-lead/fifo
	// ring/phase-lead/lifo
	// ring/phase-lead/random
}

// ExampleTrialsOpts runs a trial batch on the parallel engine with custom
// options: a pinned worker count and Wilson-interval adaptive early
// stopping. The distribution is identical at any worker count; with a Stop
// rule, the batch ends at a deterministic prefix once the max-win estimate
// is resolved to ±0.05.
func ExampleTrialsOpts() {
	spec := repro.Spec{N: 16, Protocol: repro.NewALead(), Seed: 20180516}
	dist, err := repro.TrialsOpts(context.Background(), spec, 10_000, repro.TrialOptions{
		Workers: 2,
		Stop:    repro.StopWhenResolved(0.05, 200, 1.96),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("stopped after %d of 10000 trials, %d failures\n", dist.Trials, dist.Failures())
	// Output:
	// stopped after 224 of 10000 trials, 0 failures
}
