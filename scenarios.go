package repro

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/fullnet"
	"repro/internal/scenario"
	"repro/internal/shamir"
	"repro/internal/simgraph"
	"repro/internal/syncnet"
	"repro/internal/treeproto"
)

// The paper's reference scenarios (Section 1.1): synchronous networks,
// the asynchronous complete graph with Shamir sharing, and tree networks.
type (
	// CompleteElection is fair leader election on the asynchronous
	// complete graph via Shamir secret sharing (resilient to ⌈n/2⌉−1).
	CompleteElection = fullnet.Election
	// SyncProcessor is a lock-step synchronous strategy.
	SyncProcessor = syncnet.Processor
	// SyncMessage is a round-scoped synchronous message.
	SyncMessage = syncnet.Message
	// ShamirShare is one point of a secret sharing over GF(2³¹−1).
	ShamirShare = shamir.Share
	// TreeElection is the convergecast/broadcast election on trees.
	TreeElection = treeproto.Protocol
	// TreeElectionSpec configures one tree election run.
	TreeElectionSpec = treeproto.Spec
)

// NewCompleteElection builds an asynchronous fully-connected election for n
// processors; threshold 0 picks the paper-optimal ⌈n/2⌉.
func NewCompleteElection(n, threshold int) (*CompleteElection, error) {
	return fullnet.New(n, threshold)
}

// NewTreeElection builds the tree election on the given tree, rooted at
// root. Its root is the Theorem 7.2 dictator: trees are 1-simulated trees.
func NewTreeElection(tree *Graph, root int) (*TreeElection, error) {
	return treeproto.New(tree, root)
}

// PathGraph returns the path graph on n vertices (a tree).
func PathGraph(n int) (*Graph, error) { return simgraph.Path(n) }

// StarGraph returns the star graph on n vertices (a tree).
func StarGraph(n int) (*Graph, error) { return simgraph.Star(n) }

// RunSynchronous executes synchronous processors in lock-step rounds.
func RunSynchronous(procs []SyncProcessor, maxRounds int) (Result, error) {
	return syncnet.Run(procs, maxRounds)
}

// NewSynchronousCompleteElection builds the synchronous fully-connected
// election with k blind colluders in the last positions; it stays uniform
// for every k ≤ n−1 because round boundaries make rushing impossible.
func NewSynchronousCompleteElection(n, k int, seed int64) ([]SyncProcessor, error) {
	return syncnet.NewCompleteElection(n, k, seed)
}

// ShamirSplit shares a secret over GF(2³¹−1) with the given threshold. Its
// four scalars mirror the textbook (secret, t, n) statement of the scheme,
// which reads better positionally than through a spec struct.
//
//doccheck:allow-positional
func ShamirSplit(secret int64, threshold, n int, rng *rand.Rand) ([]ShamirShare, error) {
	return shamir.Split(secret, threshold, n, rng)
}

// ShamirReconstruct recovers a secret from at least threshold shares.
func ShamirReconstruct(shares []ShamirShare) (int64, error) {
	return shamir.Reconstruct(shares)
}

// The scenario registry: every runnable protocol × topology × scheduler ×
// adversary configuration as a named, self-describing value.
type (
	// Scenario is one registered configuration; run it with Run/RunOpts.
	Scenario = scenario.Scenario
	// ScenarioOpts overrides a scenario's registered defaults.
	ScenarioOpts = scenario.Opts
	// ScenarioOutcome is the uniform result of a scenario run.
	ScenarioOutcome = scenario.Outcome
	// ScenarioDescriptor is a scenario's serializable catalog entry.
	ScenarioDescriptor = scenario.Descriptor
)

// Scenarios returns the full registry, sorted by name. The catalog spans
// the asynchronous ring (every protocol, scheduler, and attack of the
// paper), the wake-up extension, the Shamir complete graph, tree
// topologies, and the synchronous models.
func Scenarios() []Scenario { return scenario.All() }

// FindScenario returns the named scenario.
func FindScenario(name string) (Scenario, bool) { return scenario.Find(name) }

// MatchScenarios returns the scenarios whose name matches the regular
// expression, in name order; an empty pattern matches everything.
func MatchScenarios(pattern string) ([]Scenario, error) { return scenario.Match(pattern) }

// RunScenario runs one registered scenario by name. The batch routes
// through the parallel trial engine: for a fixed seed the outcome is
// identical at any opts.Workers.
func RunScenario(ctx context.Context, name string, seed int64, opts ScenarioOpts) (*ScenarioOutcome, error) {
	s, ok := scenario.Find(name)
	if !ok {
		return nil, fmt.Errorf("repro: no registered scenario %q (see Scenarios())", name)
	}
	return s.RunOpts(ctx, seed, opts)
}
