package repro

import (
	"context"
	"fmt"

	"repro/internal/equilibrium"
	"repro/internal/scenario"
)

// The equilibrium certification layer: best-response deviation sweeps that
// turn the paper's game-theoretic fairness claim into a machine-checked
// statement per scenario.
type (
	// Certificate is one scenario's equilibrium certificate: the swept
	// deviation space, each candidate's gain over the fair 1/n baseline
	// under multiplicity-corrected Wilson bounds, the arg-max deviation
	// with a reproducible digest, and a verdict.
	Certificate = equilibrium.Certificate
	// CertifyOptions tunes a certification sweep (trial budget, fairness
	// threshold ε, error level α, coalition bound, worker count).
	CertifyOptions = equilibrium.Options
	// CertificateCandidate is one deviation candidate's measured outcome
	// within a certificate.
	CertificateCandidate = equilibrium.CandidateResult
	// CertifyProgress is one step of a running sweep, delivered in a
	// deterministic order (the service daemon streams it as NDJSON).
	CertifyProgress = equilibrium.Progress
	// CertificateVerdict is a certificate's conclusion: fair,
	// exploitable, or inconclusive.
	CertificateVerdict = equilibrium.Verdict
	// DeviationCandidate is one point of a scenario's deviation space:
	// attack family × coalition size × steering mode × target.
	DeviationCandidate = scenario.DeviationCandidate
	// DeviationFamily is one enumerable family of adversarial deviations
	// registered in the scenario catalog.
	DeviationFamily = scenario.DeviationFamily
)

// Certificate verdicts.
const (
	// VerdictFair certifies every swept deviation's gain at most ε.
	VerdictFair = equilibrium.VerdictFair
	// VerdictExploitable certifies some swept deviation's gain above ε.
	VerdictExploitable = equilibrium.VerdictExploitable
	// VerdictInconclusive means the trial budget resolved neither bound.
	VerdictInconclusive = equilibrium.VerdictInconclusive
)

// Certify runs the best-response deviation sweep for one registered
// scenario and returns its equilibrium certificate. Honest scenarios sweep
// every applicable deviation family up to the protocol's claimed resilience
// bound — certifying exactly the paper's fairness claim — while attack
// scenarios sweep their own family across modes and sizes. For a fixed seed
// the certificate is byte-identical at any opts.Workers.
func Certify(ctx context.Context, name string, seed int64, opts CertifyOptions) (*Certificate, error) {
	s, ok := scenario.Find(name)
	if !ok {
		return nil, fmt.Errorf("repro: no registered scenario %q (see Scenarios())", name)
	}
	return equilibrium.Certify(ctx, s, seed, opts)
}

// CertifyAll certifies every scenario in the catalog, in name order: one
// verdict per registered configuration.
func CertifyAll(ctx context.Context, seed int64, opts CertifyOptions) ([]*Certificate, error) {
	return equilibrium.CertifyAll(ctx, seed, opts)
}

// CertifyMatch certifies the scenarios whose names match the regular
// expression, in name order.
func CertifyMatch(ctx context.Context, pattern string, seed int64, opts CertifyOptions) ([]*Certificate, error) {
	return equilibrium.CertifyMatch(ctx, pattern, seed, opts)
}

// DeviationFamilies returns every registered deviation family, sorted by
// name — the enumerable attack space behind the certificates.
func DeviationFamilies() []DeviationFamily { return scenario.Families() }
