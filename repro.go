// Package repro is the public face of a full reproduction of
//
//	Yifrach & Mansour, "Fair Leader Election for Rational Agents in
//	Asynchronous Rings and Networks", PODC 2018 (arXiv:1805.04778).
//
// It re-exports the building blocks a downstream user needs: the
// asynchronous ring simulator, the paper's protocols (Basic-LEAD, A-LEADuni,
// PhaseAsyncLead, the sum-output control variant), every adversarial
// deviation studied in the paper, classical baselines, the coin-toss
// reductions, the game-theoretic bias/resilience estimators, and the full
// experiment suite that regenerates EXPERIMENTS.md.
//
// Quick start:
//
//	proto := repro.NewPhaseAsyncLead()
//	res, err := repro.Run(repro.Spec{N: 400, Protocol: proto, Seed: 1})
//	// res.Output is the uniformly elected leader in [1..400].
//
// Attacks follow the same shape:
//
//	attack := repro.NewPhaseRushingAttack(proto, 0) // k = √n+3
//	spec := repro.AttackSpec{N: 400, Protocol: proto, Attack: attack, Target: 7, Seed: seed}
//	dist, err := repro.RunAttackTrials(ctx, spec, 100, repro.TrialOptions{})
//	fmt.Println(repro.Bias(dist)) // forced rate ≈ 1 for the target
package repro

import (
	"context"

	"repro/internal/attacks"
	"repro/internal/classic"
	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/protocols/alead"
	"repro/internal/protocols/basiclead"
	"repro/internal/protocols/phaselead"
	"repro/internal/protocols/sumphase"
	"repro/internal/ring"
	"repro/internal/sim"
)

// Core model types.
type (
	// ProcID identifies a ring position (1..n); 1 is the origin.
	ProcID = sim.ProcID
	// Strategy is a single processor's behaviour.
	Strategy = sim.Strategy
	// Result is the outcome of one execution.
	Result = sim.Result
	// Protocol assigns honest strategies to every ring position.
	Protocol = ring.Protocol
	// Attack plans adversarial deviations (Definition 2.2).
	Attack = ring.Attack
	// Deviation is a planned coalition with its strategies.
	Deviation = ring.Deviation
	// Spec describes one execution.
	Spec = ring.Spec
	// AttackSpec describes one attack-trial configuration (the batched
	// counterpart of Spec).
	AttackSpec = ring.AttackSpec
	// Distribution aggregates outcomes over trials.
	Distribution = ring.Distribution
	// BiasReport is the empirical ε of Definition 2.3.
	BiasReport = core.BiasReport
	// Utility is a rational utility function (Definition 2.1).
	Utility = core.Utility
	// PhaseParams tunes PhaseAsyncLead (l, m, function seed).
	PhaseParams = phaselead.Params
	// Experiment is one entry of the reproduction suite.
	Experiment = harness.Experiment
	// ExperimentConfig tunes an experiment run.
	ExperimentConfig = harness.Config
	// ExperimentTable is an experiment's rendered result.
	ExperimentTable = harness.Table
	// ConcurrentOptions tunes the goroutine-per-processor runtime.
	ConcurrentOptions = conc.Options
	// TrialOptions tunes a parallel trial batch (workers, chunking,
	// adaptive early stopping) on the internal/engine runner.
	TrialOptions = ring.TrialOptions
)

// Options structs.
//
// Every entry point that runs a trial batch takes exactly one options
// struct, and the four of them share a vocabulary — a field with the same
// name means the same thing everywhere:
//
//   - Workers: engine worker count, 0 = runtime.NumCPU(). Never changes
//     results.
//   - Progress: deterministic chunk-ordered observation hook. Never changes
//     results.
//   - Stop: adaptive early-stopping rule over the same deterministic
//     prefixes. Changes the trial count, never the per-trial outcomes.
//
// The structs, by entry point:
//
//   - TrialOptions — Trials/TrialsOpts and RunAttackTrials (plus the
//     deprecated AttackTrials wrappers). Adds Chunk and Arenas.
//   - ScenarioOpts — RunScenario. Adds per-scenario overrides (N, Trials,
//     K, Target) on top of the shared trio.
//   - CertifyOptions — Certify/CertifyAll/CertifyMatch. Shares Workers and
//     Progress; its stopping knob is the inverted NoStop, because the
//     certifier early-stops by default and folds the rule into its cache
//     key.
//   - ConcurrentOptions — RunConcurrent only. The odd one out: it tunes a
//     single goroutine-per-processor execution (LinkCapacity,
//     StallTimeout), not a batch, so it shares no fields with the other
//     three.

// Protocol constructors.

// NewBasicLead returns the naive protocol of Appendix B (broken by one
// adversary).
func NewBasicLead() Protocol { return basiclead.New() }

// NewALead returns A-LEADuni (Section 3), resilient to O(n^{1/4}) coalitions.
func NewALead() Protocol { return alead.New() }

// NewPhaseAsyncLead returns PhaseAsyncLead (Section 6) with the paper's
// parameters (l = ⌈10√n⌉, m = 2n²), resilient to √n/10 coalitions.
func NewPhaseAsyncLead() phaselead.Protocol { return phaselead.NewDefault() }

// NewPhaseAsyncLeadWithParams returns PhaseAsyncLead with custom parameters.
func NewPhaseAsyncLeadWithParams(p PhaseParams) phaselead.Protocol { return phaselead.New(p) }

// NewSumPhaseLead returns the sum-output control variant of Appendix E.4
// (broken by four colluders; exists to show why the random function is
// needed).
func NewSumPhaseLead() Protocol { return sumphase.New() }

// NewChangRoberts returns the classical Chang–Roberts baseline.
func NewChangRoberts() Protocol { return classic.ChangRoberts{} }

// NewPeterson returns Peterson's O(n log n) baseline.
func NewPeterson() Protocol { return classic.Peterson{} }

// Attack constructors.

// NewBasicSingleAttack returns the Claim B.1 single-adversary attack on
// Basic-LEAD.
func NewBasicSingleAttack() Attack { return attacks.BasicSingle{} }

// NewSqrtAttack returns the Theorem 4.2 attack: k equally spaced rushing
// adversaries against A-LEADuni (k = 0 picks ⌈√n⌉).
func NewSqrtAttack(k int) Attack { return attacks.Rushing{Place: attacks.PlaceEqual, K: k} }

// NewCubicAttack returns the Theorem 4.3 attack: k staggered rushing
// adversaries against A-LEADuni (k = 0 picks the minimum feasible,
// ≈ (2n)^{1/3}).
func NewCubicAttack(k int) Attack { return attacks.Rushing{Place: attacks.PlaceStaggered, K: k} }

// NewRandomizedAttack returns the Theorem C.1 attack by randomly located
// adversaries that know neither their count nor their distances.
func NewRandomizedAttack() Attack { return attacks.Randomized{} }

// NewHalfRingAttack returns the ⌈n/2⌉ consecutive coalition that controls
// A-LEADuni (the executable face of Theorem 7.2 on the ring).
func NewHalfRingAttack() Attack { return attacks.HalfRing{} }

// NewPhaseRushingAttack returns the Section 6 tightness attack against
// PhaseAsyncLead (k = 0 picks √n+3).
func NewPhaseRushingAttack(p phaselead.Protocol, k int) Attack {
	return attacks.PhaseRushing{Protocol: p, K: k}
}

// NewPhaseChaseAttack returns the chase-mode deviation: validity saved,
// bias provably lost (the mechanism of Theorem 6.1, exhibited).
func NewPhaseChaseAttack(p phaselead.Protocol, k int) Attack {
	return attacks.PhaseRushing{Protocol: p, K: k, Mode: attacks.PhaseChase}
}

// NewSumPhaseAttack returns the Appendix E.4 four-colluder attack on the
// sum-output phase protocol.
func NewSumPhaseAttack() Attack { return attacks.SumPhase{} }

// Execution.

// Run executes one election on the deterministic event-driven simulator.
func Run(spec Spec) (Result, error) { return ring.Run(spec) }

// RunConcurrent executes one election on the goroutine-per-processor
// runtime (channels as FIFO links, the Go scheduler as the oblivious
// message schedule).
func RunConcurrent(spec Spec, opts ConcurrentOptions) (Result, error) {
	return conc.Run(spec, opts)
}

// Trials runs many executions with derived seeds and aggregates outcomes.
// Batches run on the parallel trial engine across every CPU; for a fixed
// seed the distribution is identical at any worker count.
func Trials(spec Spec, trials int) (*Distribution, error) { return ring.Trials(spec, trials) }

// TrialsOpts is Trials with a context (cancellation) and engine options
// (worker count, adaptive early stopping).
func TrialsOpts(ctx context.Context, spec Spec, trials int, opts TrialOptions) (*Distribution, error) {
	return ring.TrialsOpts(ctx, spec, trials, opts)
}

// RunAttackTrials plans and runs an attack repeatedly, aggregating
// outcomes. Batches run on the parallel trial engine across every CPU; for
// a fixed spec the distribution is identical at any worker count. The zero
// TrialOptions is the sensible default.
func RunAttackTrials(ctx context.Context, spec AttackSpec, trials int, opts TrialOptions) (*Distribution, error) {
	return ring.RunAttackTrials(ctx, spec, trials, opts)
}

// AttackTrials runs an attack batch with default options.
//
// Deprecated: use RunAttackTrials with an AttackSpec. This positional form
// is a thin wrapper with bit-identical results, retained so recorded
// experiment call sites keep compiling.
//
//doccheck:allow-positional
func AttackTrials(n int, protocol Protocol, attack Attack, target int64, seed int64, trials int) (*Distribution, error) {
	return ring.AttackTrials(n, protocol, attack, target, seed, trials)
}

// AttackTrialsOpts is AttackTrials with a context and engine options.
//
// Deprecated: use RunAttackTrials with an AttackSpec. This positional form
// is a thin wrapper with bit-identical results, retained so recorded
// experiment call sites keep compiling.
//
//doccheck:allow-positional
func AttackTrialsOpts(ctx context.Context, n int, protocol Protocol, attack Attack, target int64, seed int64, trials int, opts TrialOptions) (*Distribution, error) {
	return ring.AttackTrialsOpts(ctx, n, protocol, attack, target, seed, trials, opts)
}

// StopWhenResolved builds a TrialOptions.Stop rule that ends a batch once
// the empirical ε estimate's Wilson interval is narrower than halfWidth on
// both sides (z = 1.96 for 95%), after at least minTrials trials.
func StopWhenResolved(halfWidth float64, minTrials int, z float64) func(*Distribution) bool {
	return ring.StopWhenResolved(halfWidth, minTrials, z)
}

// Analysis.

// Bias summarizes a distribution as a Definition 2.3 bias report.
func Bias(dist *Distribution) BiasReport { return core.Bias(dist) }

// SelfishUtility returns the utility of a processor that only values its
// own election.
func SelfishUtility(n int, self int64) Utility { return core.NewSelfishUtility(n, self) }

// ExpectedUtility evaluates a rational utility against a distribution.
func ExpectedUtility(dist *Distribution, u Utility) (float64, error) {
	return core.ExpectedUtility(dist, u)
}

// Experiments returns the full reproduction suite (E1..E15).
func Experiments() []Experiment { return harness.All() }
