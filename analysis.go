package repro

import (
	"repro/internal/simgraph"
	"repro/internal/trace"
	"repro/internal/twoparty"
)

// Impossibility machinery (Section 7 / Appendix F).
type (
	// TwoPartyProtocol is a finite two-party coin-toss protocol tree.
	TwoPartyProtocol = twoparty.Protocol
	// TwoPartyVerdict classifies a protocol per Lemma F.2.
	TwoPartyVerdict = twoparty.Verdict
	// Party identifies a two-party participant.
	Party = twoparty.Party
	// Graph is a simple undirected communication graph.
	Graph = simgraph.Graph
	// TreePartition witnesses a k-simulated tree (Definition 7.1).
	TreePartition = simgraph.Partition
)

// Two-party participants.
const (
	PartyA = twoparty.PartyA
	PartyB = twoparty.PartyB
)

// XORCoinToss returns the classic two-party XOR exchange, whose second
// mover is a dictator.
func XORCoinToss() *TwoPartyProtocol { return twoparty.XORProtocol() }

// ClassifyTwoParty computes which party assures which outcome.
func ClassifyTwoParty(p *TwoPartyProtocol) TwoPartyVerdict { return p.Classify() }

// RingGraph returns the n-cycle as an undirected graph.
func RingGraph(n int) (*Graph, error) { return simgraph.Ring(n) }

// GridGraph returns the rows×cols grid graph.
func GridGraph(rows, cols int) (*Graph, error) { return simgraph.Grid(rows, cols) }

// HalfSplit decomposes a connected graph into a ⌈n/2⌉-simulated tree
// (Claim F.5's construction).
func HalfSplit(g *Graph) (TreePartition, error) { return simgraph.HalfSplit(g) }

// VerifySimulatedTree checks Definition 7.1 and returns the quotient tree.
func VerifySimulatedTree(g *Graph, p TreePartition, k int) (*Graph, error) {
	return simgraph.VerifySimulatedTree(g, p, k)
}

// MinSimulatedTreeK upper-bounds the smallest k for which the graph is a
// k-simulated tree (exact on trees and rings).
func MinSimulatedTreeK(g *Graph) (int, TreePartition, error) {
	return simgraph.MinSimulatedTreeK(g)
}

// Execution tracing (Appendices D, E.1).
type (
	// Recorder captures an execution for happens-before and
	// synchronization analysis; use it as a Spec's Tracer.
	Recorder = trace.Recorder
	// EventGraph is the happens-before or calculation-dependency graph.
	EventGraph = trace.Graph
	// SyncProfile is the Sent-counter spread time series of Appendix D.
	SyncProfile = trace.SyncProfile
)

// NewRecorder returns a Recorder for a ring of n processors.
func NewRecorder(n int) *Recorder { return trace.NewRecorder(n) }
