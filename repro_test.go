package repro

import (
	"context"
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	proto := NewPhaseAsyncLead()
	res, err := Run(Spec{N: 50, Protocol: proto, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("honest run failed: %v", res.Reason)
	}
	if res.Output < 1 || res.Output > 50 {
		t.Fatalf("leader %d out of range", res.Output)
	}
}

func TestPublicAPIAttackFlow(t *testing.T) {
	proto := NewALead()
	dist, err := AttackTrials(100, proto, NewSqrtAttack(0), 7, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rate := dist.WinRate(7); rate != 1.0 {
		t.Fatalf("forced rate %v, want 1.0", rate)
	}
	rep := Bias(dist)
	if rep.Leader != 7 {
		t.Fatalf("bias report leader %d, want 7", rep.Leader)
	}
}

func TestPublicAPIConcurrent(t *testing.T) {
	res, err := RunConcurrent(Spec{N: 20, Protocol: NewALead(), Seed: 2}, ConcurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("concurrent honest run failed: %v", res.Reason)
	}
}

func TestPublicAPIUtilities(t *testing.T) {
	dist, err := Trials(Spec{N: 10, Protocol: NewALead(), Seed: 3}, 200)
	if err != nil {
		t.Fatal(err)
	}
	u := SelfishUtility(10, 4)
	e, err := ExpectedUtility(dist, u)
	if err != nil {
		t.Fatal(err)
	}
	if e < 0 || e > 1 {
		t.Fatalf("expected utility %v outside [0,1]", e)
	}
	if len(Experiments()) != 15 {
		t.Fatalf("experiment suite has %d entries, want 15", len(Experiments()))
	}
}

func TestPublicAPIScenarios(t *testing.T) {
	all := Scenarios()
	if len(all) < 25 {
		t.Fatalf("scenario catalog has %d entries, want ≥ 25", len(all))
	}
	if _, ok := FindScenario("ring/phase-lead/fifo"); !ok {
		t.Fatal("ring/phase-lead/fifo missing from the catalog")
	}
	matched, err := MatchScenarios("^complete/")
	if err != nil || len(matched) < 2 {
		t.Fatalf("MatchScenarios(^complete/): %d entries err=%v, want ≥ 2", len(matched), err)
	}
	out, err := RunScenario(context.Background(), "ring/a-lead/fifo", 1, ScenarioOpts{N: 8, Trials: 50})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trials != 50 || out.N != 8 || out.FailRate != 0 {
		t.Fatalf("unexpected outcome %+v", out)
	}
	if _, err := RunScenario(context.Background(), "no/such/scenario", 1, ScenarioOpts{}); err == nil {
		t.Fatal("RunScenario invented a scenario")
	}
}
