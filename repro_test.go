package repro

import "testing"

func TestPublicAPIQuickstart(t *testing.T) {
	proto := NewPhaseAsyncLead()
	res, err := Run(Spec{N: 50, Protocol: proto, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("honest run failed: %v", res.Reason)
	}
	if res.Output < 1 || res.Output > 50 {
		t.Fatalf("leader %d out of range", res.Output)
	}
}

func TestPublicAPIAttackFlow(t *testing.T) {
	proto := NewALead()
	dist, err := AttackTrials(100, proto, NewSqrtAttack(0), 7, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rate := dist.WinRate(7); rate != 1.0 {
		t.Fatalf("forced rate %v, want 1.0", rate)
	}
	rep := Bias(dist)
	if rep.Leader != 7 {
		t.Fatalf("bias report leader %d, want 7", rep.Leader)
	}
}

func TestPublicAPIConcurrent(t *testing.T) {
	res, err := RunConcurrent(Spec{N: 20, Protocol: NewALead(), Seed: 2}, ConcurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("concurrent honest run failed: %v", res.Reason)
	}
}

func TestPublicAPIUtilities(t *testing.T) {
	dist, err := Trials(Spec{N: 10, Protocol: NewALead(), Seed: 3}, 200)
	if err != nil {
		t.Fatal(err)
	}
	u := SelfishUtility(10, 4)
	e, err := ExpectedUtility(dist, u)
	if err != nil {
		t.Fatal(err)
	}
	if e < 0 || e > 1 {
		t.Fatalf("expected utility %v outside [0,1]", e)
	}
	if len(Experiments()) != 15 {
		t.Fatalf("experiment suite has %d entries, want 15", len(Experiments()))
	}
}
